// Command tables regenerates the paper's evaluation artifacts: Table I
// (m = 5), Table II (m = 10) and Figure 2 (%diff versus wmin for m = 10),
// by sweeping the Section VII.A experimental space and aggregating the
// paper's metrics against the reference heuristic IE. Table III — the
// cross-model comparison the paper's Section VII.B only speculates
// about — reruns the m = 5 campaign under every availability model of
// -models (Markov ground truth versus model-violating semi-Markov truth
// with fitted believed matrices) and prints one table per model. Table
// IV is the online extension: a multi-application grid campaign (arrival
// streams × admission policies × preemption policies on a heterogeneous
// platform under the diurnal availability model) aggregated into
// per-policy response, slowdown and deadline-miss metrics.
//
// Scale:
//
//	-scale quick   reduced sweep (default; minutes)
//	-scale full    the paper's 3,000-instance-per-m sweep (many CPU-hours)
//
// or override -scenarios / -trials / -cap / -wmins individually.
//
// Usage:
//
//	tables -table 1
//	tables -table 2
//	tables -table 3
//	tables -table 3 -models markov,semimarkov,lognormal
//	tables -table 4
//	tables -figure 2
//	tables -table 1 -scale full
//
// Long campaigns are journaled, resumable and shardable: -journal streams
// every completed instance to an append-only file, -resume continues an
// interrupted journal (only missing instances re-run; results are
// bit-identical to an uninterrupted run), -shard i/n runs one of n
// disjoint slices (0-based), and -merge recombines shard journals into
// the full tables without re-running anything:
//
//	tables -table 2 -scale full -journal t2.journal     # crash-safe
//	tables -table 2 -scale full -journal t2.journal -resume
//	tables -table 2 -scale full -journal t2-0.journal -shard 0/3   # CI job 0
//	tables -table 2 -merge t2-0.journal,t2-1.journal,t2-2.journal
//
// SIGINT/SIGTERM (Ctrl-C) cancel the run context: in-flight simulations
// stop at macro-step boundaries, every completed instance is already flushed to
// the journal, and the file is closed cleanly — rerunning with -resume
// continues exactly where the interrupt landed, bit-identically.
//
// Journals come in two encodings: JSONL (default, line-per-record, text
// tooling friendly) and the TSBL binary container (-journal-format
// binary: length-prefixed CRC-checked records, ~4x smaller and ~7x
// faster to replay). Resume, merge and the daemon sniff the format from
// the file, so the flag matters only at creation; cmd/journalconv
// converts between the two losslessly. -export-columns dir/ additionally
// dumps the finished sweep journal as a columnar dataset (one
// little-endian file per field plus a JSON manifest) for mmap-style
// analysis outside Go:
//
//	tables -table 2 -scale full -journal t2.journal -journal-format binary
//	journalconv -to jsonl t2.journal t2.jsonl
//	tables -table 2 -scale full -journal t2.journal -resume -export-columns t2-columns/
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"tightsched"
	"tightsched/internal/cli"
)

func main() {
	var (
		table     = flag.Int("table", 0, "regenerate Table 1 (m=5), 2 (m=10), 3 (m=5, per availability model) or 4 (online grid)")
		figure    = flag.Int("figure", 0, "regenerate Figure 2 (%diff vs wmin, m=10)")
		models    = flag.String("models", "", "availability models to sweep, e.g. markov,semimarkov (Table 3 default: markov,semimarkov)")
		scale     = flag.String("scale", "quick", "quick | full")
		scenarios = flag.Int("scenarios", 0, "override scenarios per point")
		trials    = flag.Int("trials", 0, "override trials per scenario")
		capSlots  = flag.Int64("cap", 0, "override failure cap in slots")
		wmins     = flag.String("wmins", "", "override wmin list, e.g. 1,2,3")
		workers   = flag.Int("workers", 0, "parallel simulations (default NumCPU)")
		seed      = flag.Uint64("seed", 0, "override master seed")
		quiet     = flag.Bool("quiet", false, "suppress progress output")
		journal   = flag.String("journal", "", "stream completed instances to this append-only journal file")
		journalFm = flag.String("journal-format", "", "encoding for a newly created -journal file: jsonl (default) | binary (compact, CRC-checked, faster to replay); resume sniffs the existing file")
		exportCol = flag.String("export-columns", "", "after the run, export the -journal file into this directory as a columnar dataset (one raw little-endian file per field + manifest.json)")
		resume    = flag.Bool("resume", false, "continue an interrupted -journal file (skip recorded instances)")
		shardSpec = flag.String("shard", "", "run one slice i/n of the instance grid (0-based), e.g. -shard 0/3")
		merge     = flag.String("merge", "", "comma-separated shard journals to recombine and aggregate (no simulation)")
		advance   = flag.String("advance", "leap", "time-advance core: leap (default) | slot | batch; results are byte-identical, leap is the fast path per instance, batch shares work across a cell's instances")
	)
	flag.Parse()

	if *table == 0 && *figure == 0 {
		fmt.Fprintln(os.Stderr, "tables: choose -table 1, -table 2 or -figure 2")
		os.Exit(2)
	}
	if *figure != 0 && *figure != 2 {
		fmt.Fprintln(os.Stderr, "tables: only Figure 2 exists in the paper")
		os.Exit(2)
	}
	if *table != 0 && (*table < 1 || *table > 4) {
		fmt.Fprintln(os.Stderr, "tables: choose Table 1, 2, 3 or 4")
		os.Exit(2)
	}
	if (*table == 1 || *table == 3) && *figure == 2 {
		fmt.Fprintln(os.Stderr, "tables: Tables 1/3 (m=5) and Figure 2 (m=10) need different sweeps")
		os.Exit(2)
	}
	if *models != "" && *table != 3 {
		fmt.Fprintln(os.Stderr, "tables: -models only applies to Table 3; Tables 1/2 and Figure 2 are the paper's single-model artifacts")
		os.Exit(2)
	}
	if *table == 3 && *models == "" {
		*models = "markov,semimarkov"
	}

	// The run context: Ctrl-C (or a SIGTERM from a batch scheduler)
	// cancels it, and every layer below — the campaign worker pool at
	// instance boundaries, each simulation at macro-step boundaries —
	// honors the cancellation promptly.
	ctx, stop := cli.SignalContext(context.Background())
	defer stop()

	jfmt, err := tightsched.ParseJournalFormat(*journalFm)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(2)
	}
	if *journalFm != "" && *journal == "" {
		fmt.Fprintln(os.Stderr, "tables: -journal-format needs -journal")
		os.Exit(2)
	}
	if *exportCol != "" && *journal == "" {
		fmt.Fprintln(os.Stderr, "tables: -export-columns exports the -journal file; pass -journal")
		os.Exit(2)
	}

	if *table == 4 {
		// Table IV aggregates an online grid campaign, a different
		// instance grid from the offline sweeps: the offline campaign
		// shape and execution flags cannot apply.
		var conflicting []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "figure", "models", "scenarios", "cap", "wmins", "shard", "merge", "advance", "export-columns":
				conflicting = append(conflicting, "-"+f.Name)
			}
		})
		if len(conflicting) > 0 {
			fmt.Fprintf(os.Stderr, "tables: Table 4 is an online grid campaign; %s cannot apply — drop them\n",
				strings.Join(conflicting, " "))
			os.Exit(2)
		}
		runTable4(ctx, *scale, *trials, *workers, *seed, *journal, jfmt, *resume, *quiet)
		return
	}

	m := 5
	if *table == 2 || *figure == 2 {
		m = 10
	}
	var sweep tightsched.Sweep
	switch *scale {
	case "quick":
		sweep = tightsched.QuickSweep(m)
	case "full":
		sweep = tightsched.PaperSweep(m)
	default:
		fmt.Fprintln(os.Stderr, "tables: -scale must be quick or full")
		os.Exit(2)
	}
	if *scenarios > 0 {
		sweep.Scenarios = *scenarios
	}
	if *trials > 0 {
		sweep.Trials = *trials
	}
	if *capSlots > 0 {
		sweep.Cap = *capSlots
	}
	if *workers > 0 {
		sweep.Workers = *workers
	}
	if *seed != 0 {
		sweep.Seed = *seed
	}
	adv, err := tightsched.ParseTimeAdvance(*advance)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(2)
	}
	sweep.Advance = adv
	if *wmins != "" {
		var ws []int
		for _, part := range strings.Split(*wmins, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "tables: bad -wmins entry %q\n", part)
				os.Exit(2)
			}
			ws = append(ws, v)
		}
		sweep.Wmins = ws
	}
	if *models != "" {
		for _, part := range strings.Split(*models, ",") {
			model, err := tightsched.ModelByName(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintln(os.Stderr, "tables:", err)
				os.Exit(2)
			}
			sweep.Models = append(sweep.Models, model)
		}
	}

	var res *tightsched.SweepResult
	if *merge != "" {
		if *journal != "" || *resume || *shardSpec != "" {
			fmt.Fprintln(os.Stderr, "tables: -merge aggregates existing journals; drop -journal/-resume/-shard")
			os.Exit(2)
		}
		// The campaign is whatever the journals record; campaign-shaping
		// flags silently meaning nothing would invite quick-vs-full mixups.
		var conflicting []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "scale", "scenarios", "trials", "cap", "wmins", "workers", "seed", "models":
				conflicting = append(conflicting, "-"+f.Name)
			}
		})
		if len(conflicting) > 0 {
			fmt.Fprintf(os.Stderr, "tables: -merge renders the journals' recorded campaign; %s cannot apply — drop them\n",
				strings.Join(conflicting, " "))
			os.Exit(2)
		}
		var paths []string
		for _, p := range strings.Split(*merge, ",") {
			if p = strings.TrimSpace(p); p != "" {
				paths = append(paths, p)
			}
		}
		merged, err := tightsched.MergeSweepJournals(paths...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		if merged.Sweep.M != m {
			fmt.Fprintf(os.Stderr, "tables: journals record a m=%d campaign but the requested artifact needs m=%d\n", merged.Sweep.M, m)
			os.Exit(1)
		}
		sw := merged.Sweep
		fmt.Printf("# merged %d journal(s): m=%d ncom=%v wmin=%v scenarios=%d trials=%d cap=%d seed=%d models=%v (%d instances)\n",
			len(paths), sw.M, sw.Ncoms, sw.Wmins, sw.Scenarios, sw.Trials, sw.Cap, sw.Seed, merged.Models(), len(merged.Instances))
		res = merged
	} else {
		var shard tightsched.SweepShard
		if *shardSpec != "" {
			var err error
			if shard, err = tightsched.ParseSweepShard(*shardSpec); err != nil {
				fmt.Fprintln(os.Stderr, "tables:", err)
				os.Exit(2)
			}
		}
		if *resume && *journal == "" {
			fmt.Fprintln(os.Stderr, "tables: -resume needs -journal")
			os.Exit(2)
		}

		total := sweep.InstanceCount() * len(sweepHeuristics(sweep))
		fmt.Printf("# sweep: m=%d ncom=%v wmin=%v scenarios=%d trials=%d cap=%d models=%v (%d simulations",
			sweep.M, sweep.Ncoms, sweep.Wmins, sweep.Scenarios, sweep.Trials, sweep.Cap, modelNames(sweep), total)
		if *shardSpec != "" {
			fmt.Printf("; shard %s", shard)
		}
		fmt.Println(")")

		start := time.Now()
		progress := func(done, total int) {
			if *quiet {
				return
			}
			if done%200 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\r%d/%d simulations (%.0fs)", done, total, time.Since(start).Seconds())
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
		session := tightsched.NewSession(
			tightsched.WithProgress(progress),
			tightsched.WithShard(shard),
		)
		var runOpts []tightsched.Option
		var cacheObs *cacheObserver
		if *advance == "batch" {
			cacheObs = &cacheObserver{}
			runOpts = append(runOpts, tightsched.WithObserver(cacheObs))
		}
		var j *tightsched.SweepJournal
		if *journal != "" {
			var err error
			j, err = openOrCreateJournal(*journal, jfmt, *resume, sweep, shard)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tables:", err)
				os.Exit(1)
			}
			if n := j.DoneCount(); *resume && n > 0 {
				fmt.Printf("# resuming: %d instances already journaled\n", n)
			}
			runOpts = append(runOpts, tightsched.WithJournal(j))
		}
		var err error
		res, err = session.RunSweep(ctx, sweep, runOpts...)
		// Close the journal before acting on any error: a cancelled run
		// must leave a flushed, resumable file, not a torn tail.
		if j != nil {
			if cerr := j.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr)
				if *journal != "" {
					fmt.Fprintf(os.Stderr, "tables: interrupted — journal %s is intact; rerun with -resume to continue\n", *journal)
				} else {
					fmt.Fprintln(os.Stderr, "tables: interrupted — no journal was attached; pass -journal to make long runs resumable")
				}
				os.Exit(cli.ExitInterrupted)
			}
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		if *shardSpec != "" {
			fmt.Printf("# NOTE: shard %s only — tables below aggregate a partial grid; recombine journals with -merge\n", shard)
		}
		if *exportCol != "" {
			if err := tightsched.ExportSweepColumns(*journal, *exportCol); err != nil {
				fmt.Fprintln(os.Stderr, "tables:", err)
				os.Exit(1)
			}
			fmt.Printf("# exported columnar dataset to %s\n", *exportCol)
		}
		if cacheObs != nil && cacheObs.cells > 0 {
			t := cacheObs.total
			fmt.Printf("# batch sharing over %d cells: set-stats memo %s hits (%d/%d), shared decisions %s (%d/%d, %d classes)\n",
				cacheObs.cells,
				pct(t.MemoHits, t.MemoHits+t.MemoMisses), t.MemoHits, t.MemoHits+t.MemoMisses,
				pct(t.DecisionHits, t.DecisionHits+t.DecisionMisses), t.DecisionHits, t.DecisionHits+t.DecisionMisses,
				t.DecisionClasses)
		}
	}

	if *table != 0 {
		// The artifact bytes are rendered by the same function the service
		// daemon serves from GET /v1/campaigns/{id}/tables/{n}, so the two
		// agree byte for byte on identical campaigns (the daemon-e2e CI job
		// diffs them).
		artifact, err := tightsched.RenderTableArtifact(res, *table)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		fmt.Print(artifact)
	}
	if *figure == 2 {
		fmt.Printf("\nFigure 2 — relative distance to IE vs wmin (m = 10)\n\n")
		series, err := res.Figure2(tightsched.ReferenceHeuristic)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		names := []string{"E-IAY", "E-IP", "E-IY", "IAY", "IE", "IY", "P-IE", "Y-IE"}
		fmt.Print(tightsched.FormatFigure2(series, names))
	}
}

// runTable4 executes (or resumes) an online grid campaign and prints
// Table IV. Like the offline path, the artifact bytes come from
// RenderTableArtifact, the same function behind the daemon's
// GET /v1/campaigns/{id}/tables/4.
func runTable4(ctx context.Context, scale string, trials, workers int, seed uint64, journalPath string, format tightsched.JournalFormat, resume, quiet bool) {
	var g tightsched.OnlineSweep
	switch scale {
	case "quick":
		g = tightsched.QuickOnlineSweep()
	case "full":
		g = tightsched.PaperOnlineSweep()
	default:
		fmt.Fprintln(os.Stderr, "tables: -scale must be quick or full")
		os.Exit(2)
	}
	if trials > 0 {
		g.Trials = trials
	}
	if seed != 0 {
		g.Seed = seed
	}
	if workers > 0 {
		g.Workers = workers
	}
	if resume && journalPath == "" {
		fmt.Fprintln(os.Stderr, "tables: -resume needs -journal")
		os.Exit(2)
	}

	arrivals := make([]string, len(g.Arrivals))
	for i, a := range g.Arrivals {
		arrivals[i] = a.Name()
	}
	fmt.Printf("# online grid: arrivals=%v admissions=%v preemptions=%v trials=%d horizon=%d heuristic=%s model=%s seed=%d (%d instances)\n",
		arrivals, g.Admissions, g.Preemptions, g.Trials, g.Horizon, g.Heuristic, g.Model, g.Seed, g.InstanceCount())

	start := time.Now()
	progress := func(done, total int) {
		if quiet {
			return
		}
		if done%10 == 0 || done == total {
			fmt.Fprintf(os.Stderr, "\r%d/%d instances (%.0fs)", done, total, time.Since(start).Seconds())
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	session := tightsched.NewSession(tightsched.WithProgress(progress))
	var runOpts []tightsched.Option
	var j *tightsched.OnlineJournal
	if journalPath != "" {
		var err error
		j, err = openOrCreateOnlineJournal(journalPath, format, resume, g)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		if n := len(j.Done()); resume && n > 0 {
			fmt.Printf("# resuming: %d instances already journaled\n", n)
		}
		runOpts = append(runOpts, tightsched.WithOnlineJournal(j))
	}
	res, err := session.RunOnline(ctx, g, runOpts...)
	if j != nil {
		if cerr := j.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr)
			if journalPath != "" {
				fmt.Fprintf(os.Stderr, "tables: interrupted — journal %s is intact; rerun with -resume to continue\n", journalPath)
			} else {
				fmt.Fprintln(os.Stderr, "tables: interrupted — no journal was attached; pass -journal to make long runs resumable")
			}
			os.Exit(cli.ExitInterrupted)
		}
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
	artifact, err := tightsched.RenderTableArtifact(res, 4)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
	fmt.Print(artifact)
}

// openOrCreateOnlineJournal is openOrCreateJournal's grid counterpart.
func openOrCreateOnlineJournal(path string, format tightsched.JournalFormat, resume bool, g tightsched.OnlineSweep) (*tightsched.OnlineJournal, error) {
	if resume {
		if _, err := os.Stat(path); err == nil {
			return tightsched.OpenOnlineJournal(path, g)
		} else if !os.IsNotExist(err) {
			return nil, err
		}
	}
	return tightsched.CreateOnlineJournalFormat(path, g, format)
}

// sweepHeuristics returns the campaign's resolved heuristic list.
func sweepHeuristics(sweep tightsched.Sweep) []string { return sweep.Spec().Heuristics }

// cacheObserver accumulates the per-cell sharing counters that batched
// campaigns attach to PointDone events, for the end-of-run summary line.
type cacheObserver struct {
	total tightsched.SweepCacheStats
	cells int
}

func (o *cacheObserver) OnInstanceDone(tightsched.InstanceDone) {}
func (o *cacheObserver) OnProgress(tightsched.Progress)         {}
func (o *cacheObserver) OnPointDone(ev tightsched.PointDone) {
	if ev.Cache != nil {
		o.total.Add(*ev.Cache)
		o.cells++
	}
}

// pct formats hits/total as a percentage, dodging 0/0.
func pct(hits, total uint64) string {
	if total == 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(total))
}

// openOrCreateJournal resumes an existing journal file or starts a fresh
// one; with -resume a missing file is created instead of failing, so one
// command line works both on first run and on restart after a crash.
// format applies only to a freshly created file — reopening sniffs the
// encoding from the file itself.
func openOrCreateJournal(path string, format tightsched.JournalFormat, resume bool, sweep tightsched.Sweep, shard tightsched.SweepShard) (*tightsched.SweepJournal, error) {
	if resume {
		if _, err := os.Stat(path); err == nil {
			return tightsched.OpenSweepJournal(path)
		} else if !os.IsNotExist(err) {
			return nil, err
		}
	}
	return tightsched.CreateSweepJournalFormat(path, sweep, shard, format)
}

func modelNames(sweep tightsched.Sweep) []string {
	if len(sweep.Models) == 0 {
		return []string{"markov"}
	}
	names := make([]string, len(sweep.Models))
	for i, m := range sweep.Models {
		names[i] = m.Name()
	}
	return names
}
