// Command offline explores Section IV of the paper: the off-line
// scheduling problem (full knowledge of future availability), its exact
// solvers, the greedy baseline, and the NP-hardness reduction from ENCD
// (exact bi-clique).
//
// Modes:
//
//	-mode solve    solve a random OFFLINE-COUPLED instance (µ=1 and µ=∞)
//	-mode greedy   compare the greedy heuristic against the exact solver
//	-mode reduce   demonstrate the Theorem 4.1 reduction on random ENCD
//	               instances, verifying equisatisfiability
//
// The greedy/reduce trial loops derive every trial's instance from a
// per-trial seed, so big batches are journaled, resumable and shardable
// exactly like cmd/tables campaigns: -journal streams per-trial outcomes
// to an append-only JSONL file, -resume skips recorded trials, and
// -shard i/n runs the trials congruent to i mod n (0-based) — n CI jobs
// jointly cover the batch disjointly.
//
// SIGINT/SIGTERM (Ctrl-C) cancel the run context at the next trial
// boundary: the journal — flushed per trial — is closed cleanly, so a
// rerun with -resume continues from the interrupted batch instead of
// finding a torn tail.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"tightsched/internal/cli"
	"tightsched/internal/exp"
	"tightsched/internal/offline"
	"tightsched/internal/rng"
)

func main() {
	var (
		mode      = flag.String("mode", "solve", "solve | greedy | reduce")
		p         = flag.Int("p", 12, "processors")
		n         = flag.Int("n", 30, "time-slots")
		m         = flag.Int("m", 4, "tasks")
		w         = flag.Int("w", 5, "per-task time in slots")
		pUp       = flag.Float64("pup", 0.6, "per-slot UP probability")
		seed      = flag.Uint64("seed", 1, "instance seed")
		trials    = flag.Int("trials", 50, "instances for greedy/reduce modes")
		journal   = flag.String("journal", "", "stream per-trial outcomes to this append-only file (greedy/reduce)")
		resume    = flag.Bool("resume", false, "skip trials already recorded in -journal")
		shardSpec = flag.String("shard", "", "run one slice i/n of the trials (0-based), e.g. -shard 0/3")
	)
	flag.Parse()

	var shard exp.Shard
	if *shardSpec != "" {
		var err error
		if shard, err = exp.ParseShard(*shardSpec); err != nil {
			fmt.Fprintln(os.Stderr, "offline:", err)
			os.Exit(2)
		}
	}
	if *mode == "solve" && (*journal != "" || *resume || *shardSpec != "") {
		fmt.Fprintln(os.Stderr, "offline: -journal/-resume/-shard apply to the greedy/reduce trial loops")
		os.Exit(2)
	}
	if *resume && *journal == "" {
		fmt.Fprintln(os.Stderr, "offline: -resume needs -journal")
		os.Exit(2)
	}

	// Trap SIGINT/SIGTERM only for the trial loops, which poll the
	// context each iteration; solve mode never polls, so swallowing the
	// signal there would make Ctrl-C a no-op.
	ctx := context.Background()
	if *mode == "greedy" || *mode == "reduce" {
		var stop context.CancelFunc
		ctx, stop = cli.SignalContext(ctx)
		defer stop()
	}

	stream := rng.New(*seed)
	switch *mode {
	case "solve":
		in := randomInstance(stream, *p, *n, *m, *w, *pUp)
		fmt.Printf("instance: p=%d n=%d m=%d w=%d P(UP)=%.2f\n\n", *p, *n, *m, *w, *pUp)
		sol, ok, err := offline.SolveUnit(in)
		check(err)
		if ok {
			fmt.Printf("µ=1 : satisfiable — processors %v simultaneously UP at slots %v\n",
				sol.Procs, sol.SlotsUsed)
		} else {
			fmt.Println("µ=1 : unsatisfiable")
		}
		sol, ok, err = offline.SolveFlexible(in)
		check(err)
		if ok {
			fmt.Printf("µ=∞ : satisfiable — %d processors × %d tasks each, %d common slots\n",
				len(sol.Procs), sol.TasksPerProc, len(sol.SlotsUsed))
		} else {
			fmt.Println("µ=∞ : unsatisfiable")
		}

	case "greedy":
		tj, err := openTrialJournal(*journal, *resume, trialHeader{
			V: 1, Mode: "greedy", P: *p, N: *n, M: *m, W: *w,
			PUp: *pUp, Seed: *seed, Trials: *trials, Shard: shard.String(),
		})
		check(err)
		exact, greedy, covered := 0, 0, 0
		for i := 0; i < *trials; i++ {
			if ctx.Err() != nil {
				interruptExit(tj, *journal)
			}
			if !shard.Covers(i) {
				continue
			}
			covered++
			rec, ok := tj.done[i]
			if !ok {
				ts := exp.TrialStream(*seed, i)
				in := randomInstance(ts, *p, *n, *m, *w, *pUp)
				_, exOK, err := offline.SolveUnit(in)
				check(err)
				_, grOK, err := offline.GreedyUnit(in)
				check(err)
				rec = trialRecord{Trial: i, A: exOK, B: grOK}
				check(tj.append(rec))
			}
			if rec.A {
				exact++
			}
			if rec.B {
				greedy++
			}
		}
		check(tj.close())
		fmt.Printf("over %d random instances (p=%d n=%d m=%d w=%d P(UP)=%.2f%s):\n",
			covered, *p, *n, *m, *w, *pUp, shardNote(shard))
		fmt.Printf("exact solver : %d satisfiable\n", exact)
		fmt.Printf("greedy       : %d solved (%.0f%% of satisfiable)\n",
			greedy, 100*float64(greedy)/max1(float64(exact)))
		fmt.Println("\nthe gap is the price of polynomial time: the problem is NP-hard (Theorem 4.1)")

	case "reduce":
		tj, err := openTrialJournal(*journal, *resume, trialHeader{
			V: 1, Mode: "reduce", P: *p, N: *n, M: *m, W: *w,
			PUp: *pUp, Seed: *seed, Trials: *trials, Shard: shard.String(),
		})
		check(err)
		agree, sat, covered := 0, 0, 0
		for i := 0; i < *trials; i++ {
			if ctx.Err() != nil {
				interruptExit(tj, *journal)
			}
			if !shard.Covers(i) {
				continue
			}
			covered++
			rec, ok := tj.done[i]
			if !ok {
				ts := exp.TrialStream(*seed, i)
				g := offline.RandomBipartite(5, 7, ts.Uniform(0.3, 0.9), ts)
				a, b := ts.IntRange(1, 4), ts.IntRange(1, 5)
				_, _, encdOK, err := offline.SolveENCD(g, a, b)
				check(err)
				in, err := offline.ReduceENCDToUnit(g, a, b)
				check(err)
				_, schedOK, err := offline.SolveUnit(in)
				check(err)
				rec = trialRecord{Trial: i, A: encdOK, B: schedOK}
				check(tj.append(rec))
			}
			if rec.A == rec.B {
				agree++
			}
			if rec.A {
				sat++
			}
		}
		check(tj.close())
		fmt.Printf("Theorem 4.1(i): ENCD ≤p OFFLINE-COUPLED(µ=1)\n")
		fmt.Printf("over %d random ENCD instances (%d satisfiable)%s: reduction preserved\n",
			covered, sat, shardNote(shard))
		fmt.Printf("satisfiability on %d/%d instances\n", agree, covered)
		if agree != covered {
			fmt.Println("REDUCTION BROKEN — this is a bug")
			os.Exit(1)
		}

	default:
		fmt.Fprintln(os.Stderr, "offline: unknown -mode", *mode)
		os.Exit(2)
	}
}

func randomInstance(stream *rng.Stream, p, n, m, w int, pUp float64) *offline.Instance {
	up := make([][]bool, p)
	for q := range up {
		up[q] = make([]bool, n)
		for t := range up[q] {
			up[q][t] = stream.Bernoulli(pUp)
		}
	}
	return &offline.Instance{Up: up, M: m, W: w}
}

func check(err error) error {
	if err != nil {
		fmt.Fprintln(os.Stderr, "offline:", err)
		os.Exit(1)
	}
	return nil
}

// interruptExit is the SIGINT/SIGTERM path out of a trial loop: close the
// journal cleanly (every recorded trial is already flushed), tell the
// operator how to continue, and exit with the conventional 130.
func interruptExit(tj *trialJournal, journal string) {
	check(tj.close())
	if journal != "" {
		fmt.Fprintf(os.Stderr, "offline: interrupted — journal %s is intact; rerun with -resume to continue\n", journal)
	} else {
		fmt.Fprintln(os.Stderr, "offline: interrupted — no journal was attached; pass -journal to make batches resumable")
	}
	os.Exit(cli.ExitInterrupted)
}

func shardNote(sh exp.Shard) string {
	if sh.Count <= 1 {
		return ""
	}
	return fmt.Sprintf(", shard %s", sh)
}

// trialRecord is one journaled trial outcome. A/B are mode-specific: for
// greedy, A = exact solver satisfiable, B = greedy solved; for reduce,
// A = ENCD satisfiable, B = reduced schedule satisfiable.
type trialRecord struct {
	Trial int  `json:"trial"`
	A     bool `json:"a"`
	B     bool `json:"b"`
}

// trialHeader stamps the batch a journal belongs to: per-trial seeds
// derive from (Seed, trial), so any two runs with equal headers produce
// identical per-trial outcomes and may share a journal.
type trialHeader struct {
	V      int     `json:"v"`
	Mode   string  `json:"mode"`
	P      int     `json:"p"`
	N      int     `json:"n"`
	M      int     `json:"m"`
	W      int     `json:"w"`
	PUp    float64 `json:"pup"`
	Seed   uint64  `json:"seed"`
	Trials int     `json:"trials"`
	Shard  string  `json:"shard"`
}

// trialJournal is the trial-loop analogue of exp.Journal, built on the
// same crash-tolerant JSONL substrate (exp.ReadJSONL and friends): a
// header line, then one line per trial, flushed per line, tolerating a
// crash-torn tail on reopen. An empty path makes it a no-op.
type trialJournal struct {
	w    *exp.JSONLWriter
	done map[int]trialRecord
}

func openTrialJournal(path string, resume bool, hdr trialHeader) (*trialJournal, error) {
	tj := &trialJournal{done: map[int]trialRecord{}}
	if path == "" {
		return tj, nil
	}
	headerLine, records, validLen, err := exp.ReadJSONL(path)
	switch {
	case err == nil:
		if !resume {
			return nil, fmt.Errorf("journal %s exists; pass -resume to continue it", path)
		}
		var got trialHeader
		if err := json.Unmarshal(headerLine, &got); err != nil {
			return nil, fmt.Errorf("journal %s header: %w", path, err)
		}
		if got != hdr {
			return nil, fmt.Errorf("journal %s records a different batch (%+v, want %+v)", path, got, hdr)
		}
		for i, line := range records {
			var rec trialRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return nil, fmt.Errorf("journal %s line %d: %w", path, i+2, err)
			}
			tj.done[rec.Trial] = rec
		}
		if tj.w, err = exp.OpenJSONLAppend(path, validLen); err != nil {
			return nil, err
		}
		return tj, nil
	case os.IsNotExist(err):
		if tj.w, err = exp.CreateJSONL(path, hdr); err != nil {
			return nil, err
		}
		return tj, nil
	default:
		return nil, err
	}
}

func (tj *trialJournal) append(rec trialRecord) error {
	if tj.w != nil {
		if err := tj.w.Append(rec); err != nil {
			return err
		}
	}
	tj.done[rec.Trial] = rec
	return nil
}

func (tj *trialJournal) close() error {
	if tj.w == nil {
		return nil
	}
	return tj.w.Close()
}

func max1(x float64) float64 {
	if x < 1 {
		return 1
	}
	return x
}
