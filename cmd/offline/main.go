// Command offline explores Section IV of the paper: the off-line
// scheduling problem (full knowledge of future availability), its exact
// solvers, the greedy baseline, and the NP-hardness reduction from ENCD
// (exact bi-clique).
//
// Modes:
//
//	-mode solve    solve a random OFFLINE-COUPLED instance (µ=1 and µ=∞)
//	-mode greedy   compare the greedy heuristic against the exact solver
//	-mode reduce   demonstrate the Theorem 4.1 reduction on random ENCD
//	               instances, verifying equisatisfiability
package main

import (
	"flag"
	"fmt"
	"os"

	"tightsched/internal/offline"
	"tightsched/internal/rng"
)

func main() {
	var (
		mode   = flag.String("mode", "solve", "solve | greedy | reduce")
		p      = flag.Int("p", 12, "processors")
		n      = flag.Int("n", 30, "time-slots")
		m      = flag.Int("m", 4, "tasks")
		w      = flag.Int("w", 5, "per-task time in slots")
		pUp    = flag.Float64("pup", 0.6, "per-slot UP probability")
		seed   = flag.Uint64("seed", 1, "instance seed")
		trials = flag.Int("trials", 50, "instances for greedy/reduce modes")
	)
	flag.Parse()

	stream := rng.New(*seed)
	switch *mode {
	case "solve":
		in := randomInstance(stream, *p, *n, *m, *w, *pUp)
		fmt.Printf("instance: p=%d n=%d m=%d w=%d P(UP)=%.2f\n\n", *p, *n, *m, *w, *pUp)
		sol, ok, err := offline.SolveUnit(in)
		check(err)
		if ok {
			fmt.Printf("µ=1 : satisfiable — processors %v simultaneously UP at slots %v\n",
				sol.Procs, sol.SlotsUsed)
		} else {
			fmt.Println("µ=1 : unsatisfiable")
		}
		sol, ok, err = offline.SolveFlexible(in)
		check(err)
		if ok {
			fmt.Printf("µ=∞ : satisfiable — %d processors × %d tasks each, %d common slots\n",
				len(sol.Procs), sol.TasksPerProc, len(sol.SlotsUsed))
		} else {
			fmt.Println("µ=∞ : unsatisfiable")
		}

	case "greedy":
		exact, greedy := 0, 0
		for i := 0; i < *trials; i++ {
			in := randomInstance(stream, *p, *n, *m, *w, *pUp)
			if _, ok, err := offline.SolveUnit(in); check(err) == nil && ok {
				exact++
			}
			if _, ok, err := offline.GreedyUnit(in); check(err) == nil && ok {
				greedy++
			}
		}
		fmt.Printf("over %d random instances (p=%d n=%d m=%d w=%d P(UP)=%.2f):\n",
			*trials, *p, *n, *m, *w, *pUp)
		fmt.Printf("exact solver : %d satisfiable\n", exact)
		fmt.Printf("greedy       : %d solved (%.0f%% of satisfiable)\n",
			greedy, 100*float64(greedy)/max1(float64(exact)))
		fmt.Println("\nthe gap is the price of polynomial time: the problem is NP-hard (Theorem 4.1)")

	case "reduce":
		agree := 0
		sat := 0
		for i := 0; i < *trials; i++ {
			g := offline.RandomBipartite(5, 7, stream.Uniform(0.3, 0.9), stream)
			a, b := stream.IntRange(1, 4), stream.IntRange(1, 5)
			_, _, encdOK, err := offline.SolveENCD(g, a, b)
			check(err)
			in, err := offline.ReduceENCDToUnit(g, a, b)
			check(err)
			_, schedOK, err := offline.SolveUnit(in)
			check(err)
			if encdOK == schedOK {
				agree++
			}
			if encdOK {
				sat++
			}
		}
		fmt.Printf("Theorem 4.1(i): ENCD ≤p OFFLINE-COUPLED(µ=1)\n")
		fmt.Printf("over %d random ENCD instances (%d satisfiable): reduction preserved\n", *trials, sat)
		fmt.Printf("satisfiability on %d/%d instances\n", agree, *trials)
		if agree != *trials {
			fmt.Println("REDUCTION BROKEN — this is a bug")
			os.Exit(1)
		}

	default:
		fmt.Fprintln(os.Stderr, "offline: unknown -mode", *mode)
		os.Exit(2)
	}
}

func randomInstance(stream *rng.Stream, p, n, m, w int, pUp float64) *offline.Instance {
	up := make([][]bool, p)
	for q := range up {
		up[q] = make([]bool, n)
		for t := range up[q] {
			up[q][t] = stream.Bernoulli(pUp)
		}
	}
	return &offline.Instance{Up: up, M: m, W: w}
}

func check(err error) error {
	if err != nil {
		fmt.Fprintln(os.Stderr, "offline:", err)
		os.Exit(1)
	}
	return nil
}

func max1(x float64) float64 {
	if x < 1 {
		return 1
	}
	return x
}
