// Command tightschedd is the campaign service daemon: a long-running
// HTTP front door over the tightsched Session API for running paper
// campaigns as declarative specs instead of flag soup.
//
// Submit a versioned YAML or JSON campaign spec, poll its progress,
// watch its typed event stream over SSE, and fetch the finished Table
// I/II/III artifacts — byte-for-byte what cmd/tables prints for the same
// campaign, because both render through the same library code path.
// Campaigns journal to the data directory, so a cancelled or killed
// campaign resumes bit-identically (tables -resume -journal, or
// resubmitting after a restart).
//
// Usage:
//
//	tightschedd [-addr :8080] [-data DIR] [-runners 2] [-workers 0]
//
// Endpoints (see internal/serve and DESIGN.md for the full contract):
//
//	POST   /v1/campaigns               submit a spec → 202 + status JSON
//	GET    /v1/campaigns[/{id}]        list / inspect campaigns
//	DELETE /v1/campaigns/{id}          cancel, journal stays resumable
//	GET    /v1/campaigns/{id}/events   SSE event stream
//	GET    /v1/campaigns/{id}/tables/{1|2|3}   Table artifacts
//	GET    /healthz, /metrics          liveness, Prometheus-style metrics
//
// SIGINT/SIGTERM shut down gracefully through the same signal path as
// the CLI tools (internal/cli): the listener drains, every campaign is
// cancelled at an instance boundary, journals are flushed and closed,
// and the daemon exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"tightsched/internal/cli"
	"tightsched/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		data      = flag.String("data", "tightschedd-data", "campaign journal directory")
		runners   = flag.Int("runners", 2, "campaigns running concurrently (others queue)")
		workers   = flag.Int("workers", 0, "default per-campaign parallel simulations when the spec leaves run.workers unset (0 = NumCPU)")
		drainWait = flag.Duration("drain", 10*time.Second, "shutdown grace for in-flight HTTP requests")
	)
	flag.Parse()

	srv, err := serve.NewServer(serve.Config{
		DataDir: *data,
		Runners: *runners,
		Workers: *workers,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "tightschedd: "+format+"\n", args...)
		},
	})
	if err != nil {
		fatal(err)
	}
	// Cluster campaigns that were mid-flight when the daemon last
	// stopped resume from their lease logs before traffic arrives.
	if resumed, err := srv.RecoverClusters(); err != nil {
		fatal(err)
	} else if len(resumed) > 0 {
		fmt.Fprintf(os.Stderr, "tightschedd: resumed %d cluster campaign(s)\n", len(resumed))
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// The daemon shares the CLI tools' signal path: SIGINT/SIGTERM cancel
	// a context, and everything downstream stops at clean boundaries.
	ctx, stop := cli.SignalContext(context.Background())
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "tightschedd: listening on %s (journals in %s, %d runners)\n",
		*addr, *data, *runners)

	select {
	case <-ctx.Done():
		// Graceful shutdown. Campaigns first: cancelling them resolves
		// every campaign at an instance boundary, flushes and closes the
		// journals, and ends the SSE streams (each emits its final state
		// event) — so the HTTP drain that follows completes quickly
		// instead of waiting out long-running streams.
		fmt.Fprintln(os.Stderr, "tightschedd: signal received, shutting down")
		srv.Close()
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			httpSrv.Close()
		}
		fmt.Fprintln(os.Stderr, "tightschedd: campaigns stopped, journals flushed")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tightschedd:", err)
	os.Exit(1)
}
