// Command gridsim runs one desktop-grid simulation: a paper-style random
// scenario (m tasks, master capacity ncom, speed scale wmin) executed
// under a chosen heuristic, optionally printing the per-slot execution
// trace in the paper's Figure 1 notation.
//
// Usage:
//
//	gridsim [flags]
//
// Examples:
//
//	gridsim -heuristic Y-IE -m 5 -ncom 10 -wmin 2 -seed 1 -trial 3
//	gridsim -heuristic IE -trace          # show the execution trace
//	gridsim -compare -trials 10           # all 17 heuristics side by side
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"tightsched"
	"tightsched/internal/cli"
	"tightsched/internal/trace"
)

func main() {
	var (
		heuristic  = flag.String("heuristic", "Y-IE", "heuristic name (see -list)")
		m          = flag.Int("m", 5, "tasks per iteration")
		ncom       = flag.Int("ncom", 10, "master communication capacity")
		wmin       = flag.Int("wmin", 2, "speed scale: w_q ~ U[wmin, 10*wmin]")
		iterations = flag.Int("iterations", 10, "iterations to complete")
		seed       = flag.Uint64("seed", 42, "scenario seed (platform draw)")
		trial      = flag.Uint64("trial", 1, "trial seed (availability realization)")
		capSlots   = flag.Int64("cap", 1_000_000, "failure cap in slots")
		allUp      = flag.Bool("all-up", false, "start all processors UP")
		showTrace  = flag.Bool("trace", false, "print the execution trace (Figure 1 notation)")
		compare    = flag.Bool("compare", false, "run all 17 heuristics and summarize")
		trials     = flag.Int("trials", 5, "trials for -compare")
		list       = flag.Bool("list", false, "list heuristic names and exit")
		spectral   = flag.Bool("spectral", false, "use the exact closed-form set evaluator (agrees with the series within eps; decisions may differ at that precision)")
		advance    = flag.String("advance", "leap", "time-advance core: leap (event-leap macro-steps, default) | slot (reference per-slot loop) | batch (lockstep batch core; a solo run is a batch of one); results are byte-identical")
	)
	flag.Parse()

	adv, err := tightsched.ParseTimeAdvance(*advance)
	if err != nil {
		fatal(err)
	}

	if *list {
		for _, name := range tightsched.Heuristics() {
			fmt.Println(name)
		}
		return
	}

	// Ctrl-C cancels the run context; the simulation stops at the next
	// macro-step boundary instead of grinding on toward a million-slot
	// cap.
	ctx, stop := cli.SignalContext(context.Background())
	defer stop()

	sc := tightsched.PaperScenario(*m, *ncom, *wmin, *seed)
	sc.App.Iterations = *iterations
	session := tightsched.NewSession(
		tightsched.WithCap(*capSlots),
		tightsched.WithAnalytic(tightsched.AnalyticOptions{Spectral: *spectral}),
		tightsched.WithTimeAdvance(adv),
	)
	var opts []tightsched.Option
	if *allUp {
		opts = append(opts, tightsched.WithInitialAllUp())
	}

	if *compare {
		sums, err := session.Compare(ctx, sc, nil, *trials,
			append(opts, tightsched.WithSeed(*trial))...)
		if err != nil {
			fatal(err)
		}
		sort.Slice(sums, func(i, j int) bool {
			a, b := sums[i], sums[j]
			if a.Fails != b.Fails {
				return a.Fails < b.Fails
			}
			return a.Makespan.Mean < b.Makespan.Mean
		})
		fmt.Printf("scenario: m=%d ncom=%d wmin=%d seed=%d, %d trials, cap=%d\n\n",
			*m, *ncom, *wmin, *seed, *trials, *capSlots)
		fmt.Printf("%-10s %6s %12s %12s %10s %10s\n",
			"heuristic", "fails", "mean", "median", "restarts", "reconfigs")
		for _, s := range sums {
			fmt.Printf("%-10s %6d %12.1f %12.1f %10.2f %10.2f\n",
				s.Heuristic, s.Fails, s.Makespan.Mean, s.Makespan.Median,
				s.MeanRestarts, s.MeanReconfigs)
		}
		return
	}

	var rec *trace.Recorder
	opts = append(opts, tightsched.WithSeed(*trial))
	if *showTrace {
		rec = &trace.Recorder{}
		opts = append(opts, tightsched.WithRecorder(rec))
	}
	res, err := session.Run(ctx, sc, *heuristic, opts...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("heuristic  : %s\n", res.Heuristic)
	fmt.Printf("makespan   : %d slots", res.Makespan)
	if res.Failed {
		fmt.Printf(" (FAILED at cap; %d/%d iterations)", res.Completed, *iterations)
	}
	fmt.Println()
	fmt.Printf("iterations : %d\n", res.Completed)
	fmt.Printf("restarts   : %d (worker DOWN)\n", res.Restarts)
	fmt.Printf("reconfigs  : %d (proactive switches)\n", res.Reconfigs)
	fmt.Printf("comm slots : %d worker-slots\n", res.CommSlots)
	fmt.Printf("compute    : %d coupled slots\n", res.ComputeSlots)
	fmt.Printf("idle slots : %d (no feasible configuration)\n", res.IdleSlots)
	if rec != nil {
		fmt.Println()
		fmt.Print(trace.Legend())
		fmt.Println()
		fmt.Print(rec.Render())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gridsim:", err)
	os.Exit(1)
}
