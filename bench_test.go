// Benchmarks regenerating each of the paper's evaluation artifacts
// (Table I, Table II, Figure 2, the Figure 1 trace) at reduced scale, plus
// ablation benches for the design choices documented in DESIGN.md. Run
//
//	go test -bench=. -benchmem
//
// at the repository root. The full-scale artifacts are produced by
// cmd/tables (-scale full); these benches keep each regeneration small
// enough to serve as a continuously-run performance regression net.
package tightsched_test

import (
	"context"
	"path/filepath"
	"testing"

	"tightsched"
	"tightsched/internal/analytic"
	"tightsched/internal/app"
	"tightsched/internal/avail"
	"tightsched/internal/exp"
	"tightsched/internal/grid"
	"tightsched/internal/markov"
	"tightsched/internal/platform"
	"tightsched/internal/rng"
	"tightsched/internal/sched"
	"tightsched/internal/sim"
)

// miniSweep is a single-point sweep preserving the full heuristic set.
func miniSweep(m int) exp.Sweep {
	return exp.Sweep{
		M:          m,
		Ncoms:      []int{10},
		Wmins:      []int{1},
		Scenarios:  1,
		Trials:     1,
		P:          20,
		Iterations: 5,
		Cap:        50_000,
		Seed:       20130522,
	}
}

// BenchmarkTableI regenerates a miniature Table I (m = 5, all 17
// heuristics) per iteration and reports the best heuristic's %diff.
func BenchmarkTableI(b *testing.B) {
	sweep := miniSweep(5)
	for i := 0; i < b.N; i++ {
		res, err := exp.Run(sweep, nil)
		if err != nil {
			b.Fatal(err)
		}
		rows, err := res.Table(exp.ReferenceHeuristic)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 17 {
			b.Fatalf("got %d rows", len(rows))
		}
		b.ReportMetric(rows[0].Diff, "best%diff")
	}
}

// BenchmarkTableII regenerates a miniature Table II (m = 10, the paper's
// best-eight heuristics).
func BenchmarkTableII(b *testing.B) {
	sweep := miniSweep(10)
	sweep.Heuristics = []string{"Y-IE", "P-IE", "E-IAY", "E-IY", "E-IP", "IAY", "IY", "IE"}
	for i := 0; i < b.N; i++ {
		res, err := exp.Run(sweep, nil)
		if err != nil {
			b.Fatal(err)
		}
		rows, err := res.Table(exp.ReferenceHeuristic)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 8 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// BenchmarkFigure2 regenerates a miniature Figure 2 (the %diff-vs-wmin
// series for m = 10 over a reduced wmin axis).
func BenchmarkFigure2(b *testing.B) {
	sweep := miniSweep(10)
	sweep.Wmins = []int{1, 2}
	sweep.Heuristics = []string{"Y-IE", "P-IE", "IE", "IAY"}
	for i := 0; i < b.N; i++ {
		res, err := exp.Run(sweep, nil)
		if err != nil {
			b.Fatal(err)
		}
		series, err := res.Figure2(exp.ReferenceHeuristic)
		if err != nil {
			b.Fatal(err)
		}
		if len(series["Y-IE"]) != len(sweep.Wmins) {
			b.Fatal("short series")
		}
	}
}

// BenchmarkFigure1Trace replays the paper's Figure 1 scripted execution.
func BenchmarkFigure1Trace(b *testing.B) {
	procs := make([]platform.Processor, 5)
	for i := range procs {
		procs[i] = platform.Processor{
			Speed: i + 1, Capacity: platform.UnboundedCapacity, Avail: markov.Uniform(0.95),
		}
	}
	pl := &platform.Platform{Procs: procs, Ncom: 2}
	script, err := sim.ParseScript([]string{
		"ddddddddddddddd",
		"uuuuuuuuurruuuu",
		"uurruuuuuuuruuu",
		"uuuuuuuuuuuuuuu",
		"ddddddddddddddd",
	})
	if err != nil {
		b.Fatal(err)
	}
	fixed := fixedAssignment{app.Assignment{0, 2, 2, 1, 0}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Platform: pl,
			App:      app.Application{Tasks: 5, Tprog: 2, Tdata: 1, Iterations: 1},
			Custom:   fixed,
			Provider: &sim.ScriptProvider{Script: script},
			Cap:      100,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Makespan != 15 {
			b.Fatalf("makespan %d", res.Makespan)
		}
	}
}

type fixedAssignment struct{ asg app.Assignment }

func (f fixedAssignment) Name() string { return "FIXED" }

func (f fixedAssignment) Decide(v *sched.View) app.Assignment {
	if v.Current != nil {
		return v.Current
	}
	for q, x := range f.asg {
		if x > 0 && v.States[q] != markov.Up {
			return nil
		}
	}
	return f.asg
}

// benchPlatform builds a paper-style analytic platform.
func benchPlatform(p int, eps float64) *analytic.Platform {
	stream := rng.New(1)
	ms := make([]markov.Matrix, p)
	for i := range ms {
		ms[i] = markov.PerState(stream.Uniform(0.90, 0.99),
			stream.Uniform(0.90, 0.99), stream.Uniform(0.90, 0.99))
	}
	return analytic.NewPlatform(ms, eps)
}

// BenchmarkAnalyticPplus measures the Theorem 5.1 series evaluation for a
// 5-worker set (the inner loop of every heuristic decision).
func BenchmarkAnalyticPplus(b *testing.B) {
	pl := benchPlatform(20, analytic.DefaultEps)
	members := []int{0, 3, 7, 11, 19}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := pl.StatsOf(members)
		if st.Pplus <= 0 {
			b.Fatal("bad stats")
		}
	}
}

// benchPlatformWith is benchPlatform with explicit evaluation options.
func benchPlatformWith(p int, eps float64, opts analytic.Options) *analytic.Platform {
	stream := rng.New(1)
	ms := make([]markov.Matrix, p)
	for i := range ms {
		ms[i] = markov.PerState(stream.Uniform(0.90, 0.99),
			stream.Uniform(0.90, 0.99), stream.Uniform(0.90, 0.99))
	}
	return analytic.NewPlatformWith(ms, eps, opts)
}

// benchMemberSets enumerates distinct 3-member sets of a 20-processor
// platform, so miss-path benchmarks never hit a memo.
func benchMemberSets(n int) [][]int {
	sets := make([][]int, 0, n)
	for a := 0; a < 20 && len(sets) < n; a++ {
		for c := a + 1; c < 20 && len(sets) < n; c++ {
			for e := c + 1; e < 20 && len(sets) < n; e++ {
				sets = append(sets, []int{a, c, e})
			}
		}
	}
	return sets
}

// BenchmarkStatsOf measures the evaluation (memo-miss) cost of a set's
// Theorem 5.1 statistics: the truncated series versus the spectral
// closed form, over rotating member sets so no memo can hit.
func BenchmarkStatsOf(b *testing.B) {
	sets := benchMemberSets(512)
	for _, bench := range []struct {
		name string
		opts analytic.Options
	}{
		{"series", analytic.Options{DisableMemo: true}},
		{"spectral", analytic.Options{DisableMemo: true, Spectral: true}},
	} {
		b.Run(bench.name, func(b *testing.B) {
			pl := benchPlatformWith(20, sim.DefaultEps, bench.opts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st := pl.StatsOf(sets[i%len(sets)])
				if st.Pplus <= 0 {
					b.Fatal("bad stats")
				}
			}
		})
	}
}

// BenchmarkStatsOfCached measures the memo hit path: the steady-state
// cost of re-scoring a set the platform has already evaluated.
func BenchmarkStatsOfCached(b *testing.B) {
	pl := benchPlatformWith(20, sim.DefaultEps, analytic.Options{})
	members := []int{0, 3, 7, 11, 19}
	pl.StatsOf(members) // warm the entry
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := pl.StatsOf(members)
		if st.Pplus <= 0 {
			b.Fatal("bad stats")
		}
	}
}

// BenchmarkSweepPoint runs one full campaign point end-to-end — platform
// generation, per-worker analytic cache, simulation, aggregation — the
// unit the campaign throughput north-star multiplies. Since the Session
// redesign this is also the "old callback path": exp.Run is a shim over
// the event stream, so the pair (SweepPoint, StreamOverhead) measures the
// same work consumed through the two API shapes.
func BenchmarkSweepPoint(b *testing.B) {
	sweep := miniSweep(5)
	sweep.Heuristics = []string{"IE", "Y-IE", "RANDOM"}
	sweep.Workers = 1 // single-threaded: ns/op must not depend on core count
	for i := 0; i < b.N; i++ {
		res, err := exp.Run(sweep, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Instances) != 3 {
			b.Fatalf("got %d instances", len(res.Instances))
		}
	}
}

// BenchmarkStreamOverhead runs exactly BenchmarkSweepPoint's campaign
// point but consumes it through the raw exp.Stream event iterator — the
// path every Session campaign (and the rebuilt callback family) rides.
// The benchgate CI job gates its ns/op against the committed baseline;
// the design requirement is that events cost < 5% over the callback
// figure of BenchmarkSweepPoint, which the baseline pair documents (the
// dominant cost is the simulations; events add a few channel sends and
// type switches per instance, not per slot).
func BenchmarkStreamOverhead(b *testing.B) {
	sweep := miniSweep(5)
	sweep.Heuristics = []string{"IE", "Y-IE", "RANDOM"}
	sweep.Workers = 1 // single-threaded: ns/op must not depend on core count
	for i := 0; i < b.N; i++ {
		instances := 0
		for ev, err := range exp.Stream(context.Background(), sweep, exp.RunOptions{}) {
			if err != nil {
				b.Fatal(err)
			}
			if _, ok := ev.(exp.InstanceDone); ok {
				instances++
			}
		}
		if instances != 3 {
			b.Fatalf("got %d instances", instances)
		}
	}
}

// BenchmarkAnalyticCandidate measures one incremental candidate
// evaluation: the set statistics of S ∪ {q} given a built S.
func BenchmarkAnalyticCandidate(b *testing.B) {
	pl := benchPlatform(20, sim.DefaultEps)
	se := pl.NewSetEval()
	for _, q := range []int{0, 3, 7, 11} {
		se.Add(q)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := se.CandidateStats(19)
		if st.Pplus <= 0 {
			b.Fatal("bad stats")
		}
	}
}

// BenchmarkHeuristicDecide measures one full scheduling decision (fresh
// configuration build) for a passive and a proactive heuristic.
func BenchmarkHeuristicDecide(b *testing.B) {
	for _, name := range []string{"IE", "IP", "Y-IE"} {
		b.Run(name, func(b *testing.B) {
			sc := tightsched.PaperScenario(10, 10, 5, 42)
			env := &sched.Env{
				Platform: sc.Platform,
				App:      sc.App,
				Analytic: analytic.NewPlatform(sc.Platform.Matrices(), sim.DefaultEps),
				Rand:     rng.New(7),
			}
			h := sched.MustBuild(name, env)
			states := make([]markov.State, sc.Platform.Size())
			v := &sched.View{
				States:  states,
				Workers: make([]sched.WorkerInfo, sc.Platform.Size()),
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.RetentionEpoch = int64(i) // defeat the proactive cache
				if asg := h.Decide(v); asg == nil {
					b.Fatal("no configuration")
				}
			}
		})
	}
}

// BenchmarkDecideAllocations tracks per-decision cost in the scheduling
// hot path: allocs/op (exact, machine-independent, gated tightly) and
// ns/op (gated generously; see cmd/benchgate). The platform runs with
// the evaluation cache plus the spectral closed form on — the tuned
// configuration whose decision cost the perf trajectory (BENCH_*.json)
// tracks: memo hits make a repeated decision a handful of map lookups,
// and spectral keeps first-sight (miss) evaluations cheap. Before
// heuristics owned scratch buffers one passive decision cost ~17 allocs
// / ~21 KB; with reuse it is down to the returned assignment. A
// regression here multiplies across every slot of every simulation of a
// sweep.
func BenchmarkDecideAllocations(b *testing.B) {
	for _, name := range []string{"IE", "Y-IE", "RANDOM", "FASTEST"} {
		b.Run(name, func(b *testing.B) {
			sc := tightsched.PaperScenario(10, 10, 5, 42)
			env := &sched.Env{
				Platform: sc.Platform,
				App:      sc.App,
				Analytic: analytic.NewPlatformWith(sc.Platform.Matrices(), sim.DefaultEps,
					analytic.Options{Spectral: true}),
				Rand: rng.New(7),
			}
			h := sched.MustBuild(name, env)
			v := &sched.View{
				States:  make([]markov.State, sc.Platform.Size()),
				Workers: make([]sched.WorkerInfo, sc.Platform.Size()),
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.RetentionEpoch = int64(i) // defeat the proactive cache
				if asg := h.Decide(v); asg == nil {
					b.Fatal("no configuration")
				}
			}
		})
	}
}

// benchEngineScenarios are the engine-core benchmark settings: "markov"
// is a paper-style platform under the default Markov provider (the leap
// engine still steps the chain RNG slot by slot, so it measures the
// macro-step machinery alone), "longsojourn" is the regime the leap core
// exists for — self-loop probabilities pushed toward 1 (hour-scale UP
// stretches at the paper's slot granularity) under the sojourn-sampled
// provider, where simulation cost collapses from per-slot to
// per-transition — and "capbound" is the worst case the paper's
// DefaultCap exists for: a permanently infeasible platform ground to the
// million-slot cap, which the leap engine crosses in O(cap / MaxLeap)
// macro-steps.
func benchEngineScenarios(b *testing.B) []struct {
	name     string
	wantFail bool
	cfg      sim.Config
} {
	paper := platform.GeneratePaper(platform.PaperConfig{
		P: 20, Wmin: 3, Ncom: 10, StayLo: 0.90, StayHi: 0.99,
	}, rng.New(42))
	sojourn := platform.GeneratePaper(platform.PaperConfig{
		P: 20, Wmin: 20, Ncom: 10, StayLo: 0.9990, StayHi: 0.9999,
	}, rng.New(42))
	allDown, err := sim.ParseScript([]string{
		"dd", "dd", "dd", "dd", "dd", "dd", "dd", "dd", "dd", "dd",
		"dd", "dd", "dd", "dd", "dd", "dd", "dd", "dd", "dd", "dd",
	})
	if err != nil {
		b.Fatal(err)
	}
	return []struct {
		name     string
		wantFail bool
		cfg      sim.Config
	}{
		{"markov", false, sim.Config{
			Platform:     paper,
			App:          app.Application{Tasks: 5, Tprog: 15, Tdata: 3, Iterations: 20},
			Heuristic:    "IE",
			Seed:         7,
			Cap:          600_000,
			InitialAllUp: true,
		}},
		{"longsojourn", false, sim.Config{
			Platform:     sojourn,
			App:          app.Application{Tasks: 5, Tprog: 100, Tdata: 20, Iterations: 20},
			Heuristic:    "IE",
			Seed:         7,
			Cap:          600_000,
			InitialAllUp: true,
			Model:        avail.SojournMarkovModel{},
		}},
		// 200k slots rather than the paper's full DefaultCap keeps the
		// slot-engine side of the pair affordable in CI; the ratio is
		// cap-independent (leap crosses the idle stretch in O(cap/MaxLeap)
		// macro-steps, the slot loop in O(cap) full passes).
		{"capbound", true, sim.Config{
			Platform:  paper,
			App:       app.Application{Tasks: 5, Tprog: 15, Tdata: 3, Iterations: 20},
			Heuristic: "IE",
			Seed:      7,
			Cap:       200_000,
			Provider:  &sim.ScriptProvider{Script: allDown},
		}},
	}
}

// benchEngine runs the engine-core scenarios under one time-advance mode.
// The pair (BenchmarkEngineSlotLoop, BenchmarkEngineLeap) is the gated
// record of the event-leap refactor: identical simulations (results are
// byte-identical; the differential tests pin it), different cores. The
// analytic platform cache is shared across iterations, exactly as a
// campaign worker shares it across a point's trials, so ns/op measures
// the engine loop rather than per-run eigendecomposition setup.
func benchEngine(b *testing.B, advance sim.TimeAdvance) {
	for _, sc := range benchEngineScenarios(b) {
		b.Run(sc.name, func(b *testing.B) {
			cfg := sc.cfg
			cfg.Advance = advance
			cfg.AnalyticCache = analytic.NewPlatformCache()
			if res, err := sim.Run(cfg); err != nil || res.Failed != sc.wantFail {
				b.Fatalf("warmup run: %+v err=%v", res, err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.Failed != sc.wantFail {
					b.Fatalf("benchmark run: %+v", res)
				}
				b.ReportMetric(float64(res.Makespan), "slots")
			}
		})
	}
}

// BenchmarkEngineSlotLoop measures the reference slot-stepped core.
func BenchmarkEngineSlotLoop(b *testing.B) { benchEngine(b, sim.AdvanceSlot) }

// BenchmarkEngineLeap measures the event-leap macro-step core on the same
// scenarios. The benchgate baseline pair documents the speedup (≥5× on
// the long-sojourn scenario is this PR's acceptance bar).
func BenchmarkEngineLeap(b *testing.B) { benchEngine(b, sim.AdvanceLeap) }

// BenchmarkEngineBatch measures the lockstep batch core on the markov and
// long-sojourn engine scenarios as a batch of one — the per-instance
// overhead floor of the structure-of-arrays walk (cross-instance sharing,
// the mode's actual payoff, is BenchmarkBatchSweepCell's subject).
func BenchmarkEngineBatch(b *testing.B) {
	for _, sc := range benchEngineScenarios(b) {
		if sc.name == "capbound" {
			continue // the scripted idle regime is the leap core's win
		}
		b.Run(sc.name, func(b *testing.B) {
			cfg := sc.cfg
			cfg.Advance = sim.AdvanceBatch
			cfg.AnalyticCache = analytic.NewPlatformCache()
			if res, err := sim.Run(cfg); err != nil || res.Failed != sc.wantFail {
				b.Fatalf("warmup run: %+v err=%v", res, err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.Failed != sc.wantFail {
					b.Fatalf("benchmark run: %+v", res)
				}
				b.ReportMetric(float64(res.Makespan), "slots")
			}
		})
	}
}

// BenchmarkBatchSweepCell runs one full campaign cell — the paper's 17
// heuristics over 2 shared-realization trials — as a single lockstep
// batch, the dispatch unit of Sweep.Advance = AdvanceBatch. The analytic
// cache is shared across iterations exactly as a campaign worker shares
// it across cells of one point.
func BenchmarkBatchSweepCell(b *testing.B) {
	sc := tightsched.PaperScenario(5, 10, 1, 20130522)
	base := sim.Config{
		Platform:      sc.Platform,
		App:           sc.App,
		Cap:           50_000,
		AnalyticCache: analytic.NewPlatformCache(),
	}
	var insts []sim.BatchInstance
	for trial := 0; trial < 2; trial++ {
		for _, h := range tightsched.PaperHeuristics() {
			insts = append(insts, sim.BatchInstance{Heuristic: h, Seed: uint64(1000 + trial)})
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, _, err := sim.RunBatch(context.Background(), base, insts)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != len(insts) {
			b.Fatalf("got %d results", len(results))
		}
	}
}

// BenchmarkEngineSlots measures raw engine throughput in slots/op with a
// passive heuristic on a paper-size platform.
func BenchmarkEngineSlots(b *testing.B) {
	sc := tightsched.PaperScenario(5, 10, 3, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tightsched.Run(sc, "IE", tightsched.Options{Seed: uint64(i), Cap: 5_000})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Makespan), "slots/op")
	}
}

// BenchmarkAblationCompletionForm compares the renewal-form E(S)(W)
// (used by the heuristics) against the formula as printed in the paper;
// the printed form's (P⁺)^{W−1} denominator makes it blow up for large W.
// DESIGN.md documents why the renewal form is the one Monte-Carlo
// validates.
func BenchmarkAblationCompletionForm(b *testing.B) {
	pl := benchPlatform(20, analytic.DefaultEps)
	st := pl.StatsOf([]int{0, 1, 2, 3})
	b.Run("renewal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if st.ExpectedCompletion(50) <= 0 {
				b.Fatal("bad value")
			}
		}
		b.ReportMetric(st.ExpectedCompletion(50), "E(50)")
	})
	b.Run("paper", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if st.ExpectedCompletionPaper(50) <= 0 {
				b.Fatal("bad value")
			}
		}
		b.ReportMetric(st.ExpectedCompletionPaper(50), "E(50)")
	})
}

// BenchmarkAblationRenewalHeuristics runs the same scenario with the
// heuristics optimizing the paper-form E (default; reproduces published
// rankings) versus the Monte-Carlo-correct renewal form. The makespan
// metrics show how much the formula choice changes actual scheduling
// behaviour (see DESIGN.md, "Reproduction notes").
func BenchmarkAblationRenewalHeuristics(b *testing.B) {
	for _, renewal := range []bool{false, true} {
		name := "paper-form"
		if renewal {
			name = "renewal-form"
		}
		b.Run(name, func(b *testing.B) {
			sc := tightsched.PaperScenario(5, 10, 3, 55)
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(sim.Config{
					Platform:  sc.Platform,
					App:       sc.App,
					Heuristic: "IE",
					Seed:      21,
					Cap:       200_000,
					RenewalE:  renewal,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Makespan), "makespan")
				b.ReportMetric(float64(res.Restarts), "restarts")
			}
		})
	}
}

// BenchmarkAblationEpsilon quantifies the engine-precision design choice
// (DefaultEps = 1e-6 for heuristic ranking): the makespan metric shows
// decisions are insensitive to tighter precision while the cost rises.
func BenchmarkAblationEpsilon(b *testing.B) {
	for _, eps := range []float64{1e-4, 1e-6, 1e-9} {
		b.Run(fmtEps(eps), func(b *testing.B) {
			sc := tightsched.PaperScenario(5, 10, 2, 42)
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(sim.Config{
					Platform:  sc.Platform,
					App:       sc.App,
					Heuristic: "Y-IE",
					Seed:      9,
					Cap:       100_000,
					Eps:       eps,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Makespan), "makespan")
			}
		})
	}
}

func fmtEps(eps float64) string {
	switch eps {
	case 1e-4:
		return "eps=1e-4"
	case 1e-6:
		return "eps=1e-6"
	default:
		return "eps=1e-9"
	}
}

// BenchmarkAblationProactive quantifies the passive-versus-proactive
// design axis on one scenario: same platform, same availability, three
// policies.
func BenchmarkAblationProactive(b *testing.B) {
	for _, name := range []string{"IE", "Y-IE", "P-IE"} {
		b.Run(name, func(b *testing.B) {
			sc := tightsched.PaperScenario(5, 10, 2, 77)
			for i := 0; i < b.N; i++ {
				res, err := tightsched.Run(sc, name, tightsched.Options{Seed: 13, Cap: 200_000})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Makespan), "makespan")
			}
		})
	}
}

// BenchmarkAblationSurviveCache measures the quantized survival cache
// against direct closed-form evaluation (the math.Pow path).
func BenchmarkAblationSurviveCache(b *testing.B) {
	pl := benchPlatform(1, analytic.DefaultEps)
	p := pl.Procs[0]
	b.Run("quantized", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += p.SurviveQ(float64(i%200) * 0.37)
		}
		_ = sink
	})
	b.Run("direct", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += p.SurviveReal(float64(i%200) * 0.37)
		}
		_ = sink
	})
}

// BenchmarkOnlineStep runs one complete online grid simulation — the
// quick campaign's recorded trace through EDF admission with
// lowest-priority preemption on the tiered platform — per op. It is the
// online layer's SweepPoint: the benchgate baseline pins the cost of
// one Table IV instance.
func BenchmarkOnlineStep(b *testing.B) {
	g := exp.QuickOnlineSweep()
	g.Horizon = 4_000
	g.Trials = 1
	g.Arrivals = g.Arrivals[1:2] // the recorded trace
	g.Admissions = []string{"edf"}
	g.Preemptions = []string{"lowest-priority"}
	for i := 0; i < b.N; i++ {
		res, err := exp.RunGridContext(context.Background(), g, exp.GridRunOptions{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Instances) != 1 {
			b.Fatalf("got %d instances", len(res.Instances))
		}
	}
}

// BenchmarkArrivalStream materializes a 100-application Poisson arrival
// stream per op — the per-trial setup cost every online instance pays
// before its first slot.
func BenchmarkArrivalStream(b *testing.B) {
	spec := grid.ArrivalSpec{Kind: grid.KindPoisson, MeanGap: 120, Apps: 100, WminLo: 1, WminHi: 3, DeadlineFactor: 15}
	shape := grid.Shape{M: 5, Iterations: 5, AppProcs: 4, Ncom: 6}
	for i := 0; i < b.N; i++ {
		arrivals := spec.Materialize(rng.NewKeyed(uint64(i), 0xa221), shape)
		if len(arrivals) != 100 {
			b.Fatalf("got %d arrivals", len(arrivals))
		}
	}
}

// ---- journal codec benches -------------------------------------------------

// journalBenchSweep is a wide campaign shape — 100,000 instances — whose
// journal the codec benches write and replay. The instances themselves
// are synthesized (no simulation): these benches isolate codec and
// aggregation throughput.
func journalBenchSweep() exp.Sweep {
	s := miniSweep(10)
	s.Scenarios = 2500
	s.Trials = 10
	s.Heuristics = []string{"IE", "Y-IE", "RANDOM", "IAY"}
	return s
}

// synthInstance derives a deterministic outcome for one campaign
// coordinate: varied makespans, an occasional failure at the cap.
func synthInstance(c exp.Coord, h string, i int) exp.InstanceResult {
	inst := exp.InstanceResult{Point: c.Point, Trial: c.Trial, Model: c.Model, Heuristic: h}
	if i%97 == 0 {
		inst.Failed = true
		inst.Makespan = 50_000
	} else {
		inst.Makespan = int64(1_000 + (i*37)%9_000)
	}
	return inst
}

// buildBenchJournal writes the full synthetic campaign journal in the
// given format and returns its path and instance count.
func buildBenchJournal(b *testing.B, format exp.Format) (string, int) {
	b.Helper()
	s := journalBenchSweep()
	path := filepath.Join(b.TempDir(), "bench."+format.String())
	j, err := exp.CreateJournalFormat(path, s, exp.Shard{}, format)
	if err != nil {
		b.Fatal(err)
	}
	n := 0
	for _, c := range s.Coords() {
		for _, h := range s.Heuristics {
			if err := j.Append(synthInstance(c, h, n)); err != nil {
				b.Fatal(err)
			}
			n++
		}
	}
	if err := j.Close(); err != nil {
		b.Fatal(err)
	}
	return path, n
}

// benchJournalAppend measures one journal record append (encode + flushed
// write) per op.
func benchJournalAppend(b *testing.B, format exp.Format) {
	s := journalBenchSweep()
	path := filepath.Join(b.TempDir(), "append."+format.String())
	j, err := exp.CreateJournalFormat(path, s, exp.Shard{}, format)
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	coords := s.Coords()
	heuristics := s.Heuristics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := coords[(i/len(heuristics))%len(coords)]
		if err := j.Append(synthInstance(c, heuristics[i%len(heuristics)], i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJournalAppendJSONL(b *testing.B)  { benchJournalAppend(b, exp.FormatJSONL) }
func BenchmarkJournalAppendBinary(b *testing.B) { benchJournalAppend(b, exp.FormatBinary) }

// benchJournalReplay measures streaming aggregation over the full
// 100k-instance journal per op: decode every record, fold it into the
// table accumulators, render nothing. This is the replay path behind
// tables -resume and the daemon's restart recovery; the binary codec's
// acceptance bar is >= 3x JSONL here.
func benchJournalReplay(b *testing.B, format exp.Format) {
	path, n := buildBenchJournal(b, format)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exp.AggregateJournal(path)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			rows, err := res.Table(exp.ReferenceHeuristic)
			if err != nil {
				b.Fatal(err)
			}
			if len(rows) != len(journalBenchSweep().Heuristics) {
				b.Fatalf("got %d rows over %d instances", len(rows), n)
			}
		}
	}
}

func BenchmarkJournalReplayJSONL(b *testing.B)  { benchJournalReplay(b, exp.FormatJSONL) }
func BenchmarkJournalReplayBinary(b *testing.B) { benchJournalReplay(b, exp.FormatBinary) }
