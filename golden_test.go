package tightsched_test

import (
	"context"
	"reflect"
	"testing"

	"tightsched"
	"tightsched/internal/exp"
)

// goldenRuns pins the simulator's exact outcomes for fixed seeds, as
// produced by the seed revision BEFORE availability models existed (the
// hard-wired Markov sampler). The pluggable avail.Model path must
// reproduce them bit-for-bit: same heuristic rankings, same Result
// fields. Scenario: PaperScenario(m, 10, 2, 11), Cap 200,000.
var goldenRuns = []struct {
	m         int
	heuristic string
	seed      uint64
	makespan  int64
	completed int
	restarts  int64
	reconfigs int64
}{
	{5, "IE", 1, 667, 10, 18, 0},
	{5, "IE", 7, 337, 10, 9, 0},
	{5, "IE", 42, 464, 10, 12, 0},
	{5, "Y-IE", 1, 622, 10, 18, 12},
	{5, "Y-IE", 7, 432, 10, 13, 10},
	{5, "Y-IE", 42, 442, 10, 12, 11},
	{5, "P-IE", 1, 667, 10, 18, 13},
	{5, "P-IE", 7, 533, 10, 17, 13},
	{5, "P-IE", 42, 442, 10, 12, 10},
	{5, "IAY", 1, 795, 10, 15, 0},
	{5, "IAY", 7, 571, 10, 12, 0},
	{5, "IAY", 42, 582, 10, 9, 0},
	{5, "RANDOM", 1, 4400, 10, 303, 0},
	{5, "RANDOM", 7, 2628, 10, 193, 0},
	{5, "RANDOM", 42, 3204, 10, 221, 0},
	{5, "FASTEST", 1, 587, 10, 32, 0},
	{5, "FASTEST", 7, 553, 10, 25, 0},
	{5, "FASTEST", 42, 475, 10, 20, 0},
	{10, "IE", 1, 1413, 10, 48, 0},
	{10, "IE", 7, 2086, 10, 81, 0},
	{10, "IE", 42, 1756, 10, 63, 0},
	{10, "Y-IE", 1, 1518, 10, 30, 34},
	{10, "Y-IE", 7, 1146, 10, 28, 27},
	{10, "Y-IE", 42, 1023, 10, 24, 22},
	{10, "P-IE", 1, 1580, 10, 29, 33},
	{10, "P-IE", 7, 1195, 10, 28, 30},
	{10, "P-IE", 42, 1023, 10, 24, 21},
	{10, "IAY", 1, 1743, 10, 22, 0},
	{10, "IAY", 7, 1633, 10, 28, 0},
	{10, "IAY", 42, 1954, 10, 28, 0},
	{10, "RANDOM", 1, 53590, 10, 5380, 0},
	{10, "RANDOM", 7, 92985, 10, 9347, 0},
	{10, "RANDOM", 42, 51486, 10, 5148, 0},
	{10, "FASTEST", 1, 2799, 10, 210, 0},
	{10, "FASTEST", 7, 3743, 10, 328, 0},
	{10, "FASTEST", 42, 2194, 10, 178, 0},
}

// TestMarkovModelGoldenParity runs every golden case twice — through the
// default path (no model set) and through an explicit MarkovModel — and
// requires both to match the pinned pre-refactor results exactly.
func TestMarkovModelGoldenParity(t *testing.T) {
	for _, g := range goldenRuns {
		for _, explicit := range []bool{false, true} {
			opt := tightsched.Options{Seed: g.seed, Cap: 200_000}
			if explicit {
				opt.Model = tightsched.MarkovModel{}
			}
			sc := tightsched.PaperScenario(g.m, 10, 2, 11)
			res, err := tightsched.Run(sc, g.heuristic, opt)
			if err != nil {
				t.Fatalf("%s m=%d seed=%d: %v", g.heuristic, g.m, g.seed, err)
			}
			if res.Makespan != g.makespan || res.Completed != g.completed ||
				res.Restarts != g.restarts || res.Reconfigs != g.reconfigs || res.Failed {
				t.Errorf("%s m=%d seed=%d explicit=%v: got (mk=%d done=%d rst=%d rcf=%d failed=%v), want (%d %d %d %d false)",
					g.heuristic, g.m, g.seed, explicit,
					res.Makespan, res.Completed, res.Restarts, res.Reconfigs, res.Failed,
					g.makespan, g.completed, g.restarts, g.reconfigs)
			}
		}
	}
}

// TestEvaluationCacheGoldenParity runs golden cases with the analytic
// memo table disabled and requires results identical to the default
// (memoized) path: the cache must be bit-transparent at the level of
// whole simulations, not just individual statistics. (The pinned golden
// values themselves are checked against the default path by
// TestMarkovModelGoldenParity, so together these pin cache-on == cache-off
// == seed.)
func TestEvaluationCacheGoldenParity(t *testing.T) {
	for _, g := range goldenRuns {
		sc := tightsched.PaperScenario(g.m, 10, 2, 11)
		base, err := tightsched.Run(sc, g.heuristic, tightsched.Options{Seed: g.seed, Cap: 200_000})
		if err != nil {
			t.Fatalf("%s m=%d seed=%d: %v", g.heuristic, g.m, g.seed, err)
		}
		uncached, err := tightsched.Run(sc, g.heuristic, tightsched.Options{
			Seed: g.seed, Cap: 200_000,
			Analytic: tightsched.AnalyticOptions{DisableMemo: true},
		})
		if err != nil {
			t.Fatalf("%s m=%d seed=%d uncached: %v", g.heuristic, g.m, g.seed, err)
		}
		if base != uncached {
			t.Errorf("%s m=%d seed=%d: cached %+v != uncached %+v", g.heuristic, g.m, g.seed, base, uncached)
		}
	}
}

// TestSpectralGoldenScenarios smoke-tests the opt-in spectral fast path
// on the golden scenarios: it is allowed to differ from the series within
// the evaluation precision (so no bit-parity), but every run must still
// complete all iterations under the cap.
func TestSpectralGoldenScenarios(t *testing.T) {
	for _, g := range goldenRuns {
		if g.heuristic == "RANDOM" || g.heuristic == "FASTEST" {
			continue // no analytic evaluation involved
		}
		sc := tightsched.PaperScenario(g.m, 10, 2, 11)
		res, err := tightsched.Run(sc, g.heuristic, tightsched.Options{
			Seed: g.seed, Cap: 200_000,
			Analytic: tightsched.AnalyticOptions{Spectral: true},
		})
		if err != nil {
			t.Fatalf("%s m=%d seed=%d spectral: %v", g.heuristic, g.m, g.seed, err)
		}
		if res.Failed || res.Completed != g.completed {
			t.Errorf("%s m=%d seed=%d spectral: completed %d/%d (failed=%v)",
				g.heuristic, g.m, g.seed, res.Completed, g.completed, res.Failed)
		}
	}
}

// TestLeapGoldenParity renders Tables I, II and III under the reference
// slot-stepped engine and under the event-leap engine (the default) with
// the default Markov provider, and requires the formatted artifacts to be
// byte-identical — the leap core is an execution strategy, not a model
// change. Grids are reduced; the heuristic sets are the tables' own.
func TestLeapGoldenParity(t *testing.T) {
	baseSweep := func(m int) tightsched.Sweep {
		s := tightsched.QuickSweep(m)
		s.Ncoms = []int{10}
		s.Wmins = []int{2}
		s.Scenarios = 1
		s.Trials = 2
		s.Cap = 100_000
		return s
	}
	render := func(sweep tightsched.Sweep, table int) string {
		res, err := tightsched.RunSweep(sweep, nil)
		if err != nil {
			t.Fatalf("table %d advance=%v: %v", table, sweep.Advance, err)
		}
		if table == 3 {
			tables, err := res.TableIII(tightsched.ReferenceHeuristic)
			if err != nil {
				t.Fatalf("table 3 advance=%v: %v", sweep.Advance, err)
			}
			return tightsched.FormatTableIII(tables)
		}
		rows, err := res.Table(tightsched.ReferenceHeuristic)
		if err != nil {
			t.Fatalf("table %d advance=%v: %v", table, sweep.Advance, err)
		}
		return tightsched.FormatTable(rows)
	}
	cases := []struct {
		name  string
		table int
		sweep tightsched.Sweep
	}{
		{"TableI", 1, baseSweep(5)},
		{"TableII", 2, func() tightsched.Sweep {
			s := baseSweep(10)
			s.Heuristics = []string{"Y-IE", "P-IE", "E-IAY", "E-IY", "E-IP", "IAY", "IY", "IE"}
			return s
		}()},
		{"TableIII", 3, func() tightsched.Sweep {
			s := baseSweep(5)
			s.Heuristics = []string{"IE", "Y-IE", "RANDOM"}
			s.Models = []tightsched.AvailabilityModel{
				tightsched.MarkovModel{}, tightsched.NewSemiMarkovModel(0.6),
			}
			return s
		}()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			slotSweep := c.sweep
			slotSweep.Advance = tightsched.AdvanceSlot
			leapSweep := c.sweep
			leapSweep.Advance = tightsched.AdvanceLeap
			slotOut := render(slotSweep, c.table)
			leapOut := render(leapSweep, c.table)
			if slotOut != leapOut {
				t.Fatalf("%s diverges between engines\nslot:\n%s\nleap:\n%s", c.name, slotOut, leapOut)
			}
		})
	}
}

// TestBatchGoldenParity renders the same reduced Tables I, II and III
// under the lockstep batch core and requires the formatted artifacts to
// be byte-identical to the slot reference — cross-instance sharing of
// availability walks and greedy builds is an execution strategy, not a
// model change.
func TestBatchGoldenParity(t *testing.T) {
	baseSweep := func(m int) tightsched.Sweep {
		s := tightsched.QuickSweep(m)
		s.Ncoms = []int{10}
		s.Wmins = []int{2}
		s.Scenarios = 1
		s.Trials = 2
		s.Cap = 100_000
		return s
	}
	render := func(sweep tightsched.Sweep, table int) string {
		res, err := tightsched.RunSweep(sweep, nil)
		if err != nil {
			t.Fatalf("table %d advance=%v: %v", table, sweep.Advance, err)
		}
		if table == 3 {
			tables, err := res.TableIII(tightsched.ReferenceHeuristic)
			if err != nil {
				t.Fatalf("table 3 advance=%v: %v", sweep.Advance, err)
			}
			return tightsched.FormatTableIII(tables)
		}
		rows, err := res.Table(tightsched.ReferenceHeuristic)
		if err != nil {
			t.Fatalf("table %d advance=%v: %v", table, sweep.Advance, err)
		}
		return tightsched.FormatTable(rows)
	}
	cases := []struct {
		name  string
		table int
		sweep tightsched.Sweep
	}{
		{"TableI", 1, baseSweep(5)},
		{"TableII", 2, func() tightsched.Sweep {
			s := baseSweep(10)
			s.Heuristics = []string{"Y-IE", "P-IE", "E-IAY", "E-IY", "E-IP", "IAY", "IY", "IE"}
			return s
		}()},
		{"TableIII", 3, func() tightsched.Sweep {
			s := baseSweep(5)
			s.Heuristics = []string{"IE", "Y-IE", "RANDOM"}
			s.Models = []tightsched.AvailabilityModel{
				tightsched.MarkovModel{}, tightsched.NewSemiMarkovModel(0.6),
			}
			return s
		}()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			slotSweep := c.sweep
			slotSweep.Advance = tightsched.AdvanceSlot
			batchSweep := c.sweep
			batchSweep.Advance = tightsched.AdvanceBatch
			slotOut := render(slotSweep, c.table)
			batchOut := render(batchSweep, c.table)
			if slotOut != batchOut {
				t.Fatalf("%s diverges between engines\nslot:\n%s\nbatch:\n%s", c.name, slotOut, batchOut)
			}
		})
	}
}

// TestQuickSweepDeterministicAcrossWorkers requires a QuickSweep-shaped
// campaign to produce identical instances regardless of the worker-pool
// size, serial included.
func TestQuickSweepDeterministicAcrossWorkers(t *testing.T) {
	base := tightsched.QuickSweep(5)
	base.Ncoms = []int{10}
	base.Wmins = []int{1, 2}
	base.Scenarios = 1
	base.Trials = 2
	base.Cap = 50_000
	base.Heuristics = []string{"IE", "Y-IE", "RANDOM"}

	var reference *exp.Result
	for _, workers := range []int{1, 4, 16} {
		sweep := base
		sweep.Workers = workers
		res, err := tightsched.RunSweep(sweep, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if reference == nil {
			reference = res
			continue
		}
		if !reflect.DeepEqual(res.Instances, reference.Instances) {
			t.Fatalf("workers=%d: instances differ from workers=1", workers)
		}
	}
}

// goldenTableIV pins the quick online campaign's full Table IV artifact
// — the bytes cmd/tables -table 4 prints and the daemon serves at
// /tables/4. Any engine, policy, arrival-stream or aggregation change
// that shifts a digit must be deliberate and update this pin.
const goldenTableIV = "\n" +
	"Table IV — online grid: per-policy response, slowdown and deadline misses (heuristic: IE, model: diurnal)\n" +
	"\n" +
	"arrival    adm    preempt           apps  done  evict  miss%      resp   slowdn   makespan\n" +
	"poisson    edf    lowest-priority     24    24      2   12.5    426.96    10.67       2610\n" +
	"poisson    edf    none                24    24      0   16.7    425.58    11.00       2574\n" +
	"poisson    fcfs   lowest-priority     24    24      0   20.8    442.71    12.01       2504\n" +
	"poisson    fcfs   none                24    24      0   20.8    442.71    12.01       2504\n" +
	"poisson    sjf    lowest-priority     24    24      2   12.5    430.25    10.82       2514\n" +
	"poisson    sjf    none                24    24      0   16.7    425.58    11.00       2574\n" +
	"trace      edf    lowest-priority     20    20      5   15.0    516.30    20.09       3228\n" +
	"trace      edf    none                20    20      0   25.0    501.95    18.89       3228\n" +
	"trace      fcfs   lowest-priority     20    20      0   20.0    501.95    18.89       3228\n" +
	"trace      fcfs   none                20    20      0   20.0    501.95    18.89       3228\n" +
	"trace      sjf    lowest-priority     20    20      4   20.0    515.05    20.02       3228\n" +
	"trace      sjf    none                20    20      0   20.0    501.95    18.89       3228\n"

// TestQuickOnlineGoldenTableIV runs the quick Table IV campaign through
// the public facade and requires the rendered artifact byte-identical
// to the pin — the online layer's end-to-end determinism gate.
func TestQuickOnlineGoldenTableIV(t *testing.T) {
	if testing.Short() {
		t.Skip("quick online campaign takes a few seconds")
	}
	res, err := tightsched.NewSession().RunOnline(context.Background(), tightsched.QuickOnlineSweep())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Grid.Instances) != 24 {
		t.Fatalf("quick online campaign produced %d instances, want 24", len(res.Grid.Instances))
	}
	got, err := tightsched.RenderTableArtifact(res, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != goldenTableIV {
		t.Errorf("Table IV drifted from the golden pin:\n--- got ---\n%s\n--- want ---\n%s", got, goldenTableIV)
	}

	// The offline tables must refuse an online result, and vice versa.
	if _, err := tightsched.RenderTableArtifact(res, 1); err == nil {
		t.Error("Table I rendered an online grid campaign")
	}
}
