// Package tightsched is a Go reproduction of "Scheduling Tightly-Coupled
// Applications on Heterogeneous Desktop Grids" (Casanova, Dufossé, Robert,
// Vivien — HCW 2013): scheduling iterative master-worker applications
// whose tasks are tightly coupled (all enrolled workers must be UP
// simultaneously for the computation to progress) on volatile desktop-grid
// processors with a 3-state availability model (UP / RECLAIMED / DOWN) and
// a bandwidth-bounded master.
//
// The package is a thin façade over the implementation packages:
//
//   - scenario construction (paper-style random platforms or custom ones),
//   - the paper's 17 scheduling heuristics (4 passive incremental, 12
//     proactive combinations, RANDOM),
//   - the Section V Markov-chain estimates of success probability and
//     expected completion time,
//   - a discrete-event simulator implementing the Section III execution
//     model, with two byte-identical time-advance cores: the event-leap
//     macro-step engine (default; cost scales with availability
//     transitions and phase events) and the reference slot-stepped loop,
//   - pluggable availability models (the paper's Markov chains, the
//     Section VII.B semi-Markov future-work model, recorded-trace
//     replay), and
//   - the Section VII experiment harness (Tables I-II, Figure 2, and the
//     cross-model Table III), with journaled, resumable and shardable
//     campaign execution for long or distributed sweeps.
//
// Quickstart:
//
//	s := tightsched.NewSession()
//	sc := tightsched.PaperScenario(5, 10, 2, 42)
//	res, err := s.Run(ctx, sc, "Y-IE", tightsched.WithSeed(1))
//	// res.Makespan is the number of slots to complete 10 iterations.
//
// The Session API (session.go) is the primary surface: every entry point
// takes a context.Context honored at macro-step and instance boundaries,
// configuration flows through functional options (WithSeed, WithModel,
// WithJournal, ...), campaigns stream typed events (Session.Stream,
// Observer), and new heuristics/availability models plug in by name via
// RegisterHeuristic/RegisterModel. The struct-options functions kept in
// this file are deprecated shims over the same implementations.
//
// See the examples/ directory and DESIGN.md for the full tour.
package tightsched

import (
	"tightsched/internal/analytic"
	"tightsched/internal/app"
	"tightsched/internal/avail"
	"tightsched/internal/core"
	"tightsched/internal/exp"
	"tightsched/internal/grid"
	"tightsched/internal/markov"
	"tightsched/internal/platform"
	"tightsched/internal/sched"
	"tightsched/internal/sim"
	"tightsched/internal/trace"
)

// Model types.
type (
	// Scenario bundles a platform and an application.
	Scenario = core.Scenario
	// Platform is a desktop grid: volatile processors plus the master's
	// communication capacity.
	Platform = platform.Platform
	// Processor is one volatile worker (speed, capacity, availability).
	Processor = platform.Processor
	// Application is the tightly-coupled iterative application model.
	Application = app.Application
	// Assignment maps tasks onto processors (Assignment[q] = x_q).
	Assignment = app.Assignment
	// AvailabilityMatrix is a 3-state Markov transition matrix over
	// (UP, RECLAIMED, DOWN).
	AvailabilityMatrix = markov.Matrix
	// State is a processor availability state.
	State = markov.State
)

// Availability states.
const (
	Up        = markov.Up
	Reclaimed = markov.Reclaimed
	Down      = markov.Down
)

// Availability-model types (see internal/avail): the ground truth a
// simulation executes is pluggable, while heuristics always reason over
// the matrices the model tells them to believe.
type (
	// AvailabilityModel is the pluggable ground-truth availability
	// process, selected per platform (Platform.Model) or per run
	// (Options.Model).
	AvailabilityModel = avail.Model
	// MarkovModel is the paper's Section III.B model (the default).
	MarkovModel = avail.MarkovModel
	// SemiMarkovModel is the paper's Section VII.B future-work model:
	// non-memoryless holding times with fitted believed matrices.
	SemiMarkovModel = avail.SemiMarkovModel
	// TraceModel replays a recorded availability log with believed
	// matrices fitted from the log.
	TraceModel = avail.TraceModel
	// HoldingSpec configures one state's holding-time distribution in a
	// derived SemiMarkovModel.
	HoldingSpec = avail.HoldingSpec
	// SojournMarkovModel is MarkovModel's run-length twin: the same
	// chains sampled by geometric sojourns, statistically identical but
	// with O(1) work per availability transition instead of per slot —
	// the opt-in provider for huge caps under the event-leap engine.
	SojournMarkovModel = avail.SojournMarkovModel
	// StateProvider feeds a simulation raw availability states slot by
	// slot (scripted runs; models subsume it for everything else).
	StateProvider = avail.StateProvider
	// RunProvider is the optional StateProvider extension the event-leap
	// engine consumes: run lengths of constant state vectors instead of
	// one vector per slot. Providers that lack it are adapted
	// transparently.
	RunProvider = avail.RunProvider
)

// NewSemiMarkovModel returns the standard heavy-tailed semi-Markov model:
// Weibull UP holding times with the given shape (< 1 is the heavy-tailed
// desktop-grid regime).
func NewSemiMarkovModel(upShape float64) *SemiMarkovModel {
	return avail.NewSemiMarkov(upShape)
}

// NewTraceModel parses a compact textual availability script ('u', 'r',
// 'd'; one string per processor) into a replay model.
func NewTraceModel(label string, perProc []string) (*TraceModel, error) {
	return avail.NewTraceModel(label, perProc)
}

// AvailabilityModels returns the names accepted by ModelByName — the
// three built-ins plus anything plugged in through RegisterModel —
// sorted. The slice is a defensive copy; mutating it cannot corrupt the
// registry.
func AvailabilityModels() []string { return avail.Names() }

// ModelByName returns a fresh built-in availability model by name.
func ModelByName(name string) (AvailabilityModel, error) { return avail.Builtin(name) }

// Simulation types.
type (
	// Options tune a single run.
	Options = core.Options
	// AnalyticOptions tune the Section V evaluator (Options.Analytic):
	// membership-keyed set-statistics memoization is on by default
	// (canonical values — every evaluation of a set returns the same
	// floats, and golden simulations match the memo-disabled path byte
	// for byte); Spectral opts into the exact closed-form fast path,
	// which agrees with the series within the configured precision.
	AnalyticOptions = analytic.Options
	// Result is the outcome of one run.
	Result = sim.Result
	// TimeAdvance selects the simulator's time-advance core
	// (WithTimeAdvance / Options.Advance / Sweep.Advance).
	TimeAdvance = sim.TimeAdvance
	// Recorder captures execution traces (see Figure 1), run-length
	// encoded: memory scales with availability/activity transitions, not
	// with slots. Per-slot views come from Recorder.Steps and Recorder.At.
	Recorder = trace.Recorder
	// TraceStep is one reconstructed slot of a recorded trace.
	TraceStep = trace.Step
	// Heuristic is the scheduling-policy interface; implement it to plug
	// a custom policy into the simulator via Options.Custom.
	Heuristic = sched.Heuristic
	// HeuristicSummary aggregates one heuristic's results over trials.
	HeuristicSummary = core.HeuristicSummary
	// SetEstimate carries the Section V probabilistic estimates.
	SetEstimate = core.SetEstimate
)

// Experiment-harness types.
type (
	// Sweep describes a Section VII experimental campaign.
	Sweep = exp.Sweep
	// SweepResult holds a campaign's raw instance results.
	SweepResult = exp.Result
	// TableRow is one line of Table I / Table II.
	TableRow = exp.TableRow
	// SweepOptions tune campaign execution: journaling, resuming,
	// sharding, and streaming consumption.
	SweepOptions = exp.RunOptions
	// SweepJournal is an append-only on-disk record of a campaign's
	// completed instances — the unit of resume and shard recombination.
	SweepJournal = exp.Journal
	// SweepShard names one deterministic slice of a campaign's instance
	// grid (shard i of n; the zero value is the whole campaign).
	SweepShard = exp.Shard
	// SweepInstance is one (model, point, trial, heuristic) outcome —
	// what a SweepOptions.Sink receives and a journal records.
	SweepInstance = exp.InstanceResult
	// SweepKey is an instance's unique campaign coordinate.
	SweepKey = exp.Key
	// SweepSpec is the JSON-serializable identity of a campaign, as
	// stamped in journal headers.
	SweepSpec = exp.SweepSpec
	// SweepCacheStats summarizes the cross-instance sharing of one batched
	// sweep cell (PointDone.Cache under Sweep.Advance == AdvanceBatch).
	SweepCacheStats = exp.CacheStats
)

// DefaultCap is the paper's makespan failure limit (1,000,000 slots).
const DefaultCap = sim.DefaultCap

// Time-advance cores (see sim.TimeAdvance): AdvanceLeap is the default
// event-leap macro-step engine, AdvanceSlot the reference slot-stepped
// loop, AdvanceBatch the lockstep structure-of-arrays core that shares
// availability walks and greedy builds across a campaign cell's
// instances; all three produce byte-identical results and traces.
const (
	AdvanceLeap  = sim.AdvanceLeap
	AdvanceSlot  = sim.AdvanceSlot
	AdvanceBatch = sim.AdvanceBatch
)

// DefaultMaxLeap is the default cap on one leap macro-step in slots.
const DefaultMaxLeap = sim.DefaultMaxLeap

// PaperScenario draws a random scenario with the Section VII.A parameters.
func PaperScenario(m, ncom, wmin int, seed uint64) Scenario {
	return core.PaperScenario(m, ncom, wmin, seed)
}

// Heuristics returns the names of every registered heuristic — the
// paper's 17, the extension baselines, and anything plugged in through
// RegisterHeuristic — sorted. The slice is a defensive copy; mutating it
// cannot corrupt the registry. PaperHeuristics returns just the paper's
// set in its presentation order.
func Heuristics() []string { return sched.Registered() }

// PaperHeuristics returns the paper's 17 heuristic names in the paper's
// order (the default heuristic set of Compare and sweeps). The slice is a
// fresh copy.
func PaperHeuristics() []string { return core.Heuristics() }

// Run simulates a scenario under the named heuristic.
//
// Deprecated: use Session.Run, which adds cancellation and functional
// options. This shim is kept for the golden tests' frozen entry points.
func Run(sc Scenario, heuristic string, opt Options) (Result, error) {
	return core.Run(sc, heuristic, opt)
}

// Compare runs several heuristics over shared availability realizations.
//
// Deprecated: use Session.Compare.
func Compare(sc Scenario, heuristics []string, trials int, baseSeed uint64, opt Options) ([]HeuristicSummary, error) {
	return core.Compare(sc, heuristics, trials, baseSeed, opt)
}

// Estimate computes P⁺, success probability and conditional expected
// duration for a worker set executing w coupled compute slots.
//
// Deprecated: use Session.Estimate.
func Estimate(sc Scenario, workers []int, w int) (SetEstimate, error) {
	return core.Estimate(sc, workers, w)
}

// PaperSweep returns the full Section VII campaign for m tasks.
func PaperSweep(m int) Sweep { return exp.PaperSweep(m) }

// QuickSweep returns a reduced campaign preserving the sweep's shape.
func QuickSweep(m int) Sweep { return exp.QuickSweep(m) }

// RunSweep executes a campaign (in parallel; deterministic).
//
// Deprecated: use Session.RunSweep (cancellation, functional options) or
// Session.Stream (typed events instead of a callback).
func RunSweep(sweep Sweep, progress func(done, total int)) (*SweepResult, error) {
	return exp.Run(sweep, progress)
}

// RunSweepWith executes a campaign with journal/resume/shard/streaming
// options: completed instances stream to the journal and sink as they
// finish, so an interrupted campaign loses only in-flight work and a
// sharded one can run as n disjoint jobs.
//
// Deprecated: use Session.RunSweep with WithJournal/WithShard/WithSink.
func RunSweepWith(sweep Sweep, opts SweepOptions) (*SweepResult, error) {
	return exp.RunWith(sweep, opts)
}

// CreateSweepJournal starts a new journal for the sweep (shard is the
// slice stamp; the zero SweepShard means the whole campaign).
func CreateSweepJournal(path string, sweep Sweep, shard SweepShard) (*SweepJournal, error) {
	return exp.CreateJournal(path, sweep, shard)
}

// OpenSweepJournal opens an existing journal for resuming, tolerating a
// crash-torn final line.
func OpenSweepJournal(path string) (*SweepJournal, error) {
	return exp.OpenJournal(path)
}

// ResumeSweep continues an interrupted journaled campaign from its file
// alone; the result is bit-identical to an uninterrupted run's.
//
// Deprecated: use Session.ResumeSweep.
func ResumeSweep(journalPath string, progress func(done, total int)) (*SweepResult, error) {
	return exp.Resume(journalPath, progress)
}

// MergeSweepJournals recombines shard journals of one campaign into one
// complete result, erroring on gaps or conflicts. Mixed-format shards
// merge transparently.
func MergeSweepJournals(paths ...string) (*SweepResult, error) {
	return exp.MergeJournals(paths...)
}

// JournalFormat selects a journal's on-disk encoding: JournalJSONL (the
// default, one JSON document per line) or JournalBinary (the compact
// length-prefixed record container — same records, CRC-checked, several
// times faster to replay). Readers sniff the format from the file, so
// the choice matters only at creation.
type JournalFormat = exp.Format

const (
	JournalJSONL  = exp.FormatJSONL
	JournalBinary = exp.FormatBinary
)

// ParseJournalFormat parses a format name: "" or "jsonl" → JournalJSONL,
// "binary" (or "bin") → JournalBinary.
func ParseJournalFormat(s string) (JournalFormat, error) { return exp.ParseFormat(s) }

// CreateSweepJournalFormat is CreateSweepJournal with an explicit on-disk
// encoding.
func CreateSweepJournalFormat(path string, sweep Sweep, shard SweepShard, format JournalFormat) (*SweepJournal, error) {
	return exp.CreateJournalFormat(path, sweep, shard, format)
}

// ConvertJournal rewrites a journal (sweep or online — the header
// decides) into the requested format at dst, streaming record by record.
// Resume, merge and aggregation treat the converted journal exactly like
// the original.
func ConvertJournal(src, dst string, to JournalFormat) error {
	return exp.ConvertJournal(src, dst, to)
}

// AggregateSweepJournal replays a sweep journal into an aggregation-only
// result: Tables I–III, Figure 2 and the failure-dominance check render
// from streaming accumulators in O(cells) memory, without materializing
// the instance slice. The result's Instances is nil.
func AggregateSweepJournal(path string) (*SweepResult, error) {
	return exp.AggregateJournal(path)
}

// AggregateOnlineJournal replays an online grid journal into an
// aggregation-only result whose Table IV renders without holding the
// instance slice.
func AggregateOnlineJournal(path string) (*SweepResult, error) {
	return exp.AggregateGridJournal(path)
}

// ExportSweepColumns streams a sweep journal into dir as a columnar
// dataset: one raw little-endian file per field plus a JSON manifest
// with dictionaries and a streaming makespan summary — mmap-friendly
// input for numpy/Arrow-style tooling.
func ExportSweepColumns(journalPath, dir string) error {
	return exp.ExportColumns(journalPath, dir)
}

// ParseSweepShard parses the command-line shard form "i/n" (0-based).
func ParseSweepShard(s string) (SweepShard, error) { return exp.ParseShard(s) }

// ReferenceHeuristic is the comparison baseline of the paper's tables
// (IE): the heuristic every relative metric is computed against.
const ReferenceHeuristic = exp.ReferenceHeuristic

// Aggregation slices (see the methods on SweepResult).
type (
	// SweepModelTable is one availability model's Table III slice.
	SweepModelTable = exp.ModelTable
	// SweepSeriesPoint is one (wmin, %diff) point of a Figure 2 series.
	SweepSeriesPoint = exp.SeriesPoint
)

// Online multi-application grid types (Session.RunOnline): arrival
// streams feed admission and preemption policies sharing one
// heterogeneous volatile platform, and per-application SLO metrics
// aggregate into Table IV.
type (
	// OnlineSweep describes an online campaign: the platform's speed
	// tiers, the per-application workload shape, and the arrival ×
	// admission × preemption × trial axes.
	OnlineSweep = exp.GridSweep
	// OnlineSpec is an OnlineSweep's JSON-serializable identity, as
	// stamped in grid journal headers.
	OnlineSpec = exp.GridSpec
	// OnlineArrival declares one arrival process: a seeded Poisson
	// stream or an inline recorded trace.
	OnlineArrival = grid.ArrivalSpec
	// OnlineEntry is one application arrival (trace entry or
	// materialized stream element).
	OnlineEntry = grid.Arrival
	// OnlineInstance is one (arrival, admission, preemption, trial)
	// outcome — what a grid journal records.
	OnlineInstance = exp.GridInstance
	// OnlineKey is an online instance's unique campaign coordinate.
	OnlineKey = exp.GridKey
	// OnlineResult holds an online campaign's raw per-instance results
	// (SweepResult.Grid); TableIV aggregates them.
	OnlineResult = exp.GridResult
	// OnlineJournal is the append-only on-disk record of an online
	// campaign's completed instances — the unit of resume.
	OnlineJournal = exp.GridJournal
	// OnlineAppReport is one application's full online outcome
	// (response, slowdown, deadline verdict, preemption count).
	OnlineAppReport = grid.AppReport
	// TableIVRow is one aggregated line of Table IV.
	TableIVRow = exp.TableIVRow
	// AdmissionPolicy orders the admission queue of an online grid;
	// implement and register one via RegisterAdmissionPolicy.
	AdmissionPolicy = grid.AdmissionPolicy
	// PreemptionPolicy picks eviction victims for queued applications;
	// implement and register one via RegisterPreemptionPolicy.
	PreemptionPolicy = grid.PreemptionPolicy
	// GridTelemetry receives live queue/running/deadline-miss updates
	// from inside online event loops (WithGridTelemetry).
	GridTelemetry = grid.Telemetry
	// OnlineSpeedTier is one class of identical-speed processors in an
	// online campaign's heterogeneous platform.
	OnlineSpeedTier = platform.SpeedTier
)

// RegisterAdmissionPolicy makes an admission policy usable by name in
// online campaign axes, the command-line tools and the service daemon —
// and, because grid journal headers record policies by name, in headless
// ResumeOnline of campaigns that used it. Names appear in
// AdmissionPolicies.
func RegisterAdmissionPolicy(name string, f func() AdmissionPolicy) error {
	return grid.RegisterAdmission(name, f)
}

// RegisterPreemptionPolicy is RegisterAdmissionPolicy's preemption
// counterpart; names appear in PreemptionPolicies.
func RegisterPreemptionPolicy(name string, f func() PreemptionPolicy) error {
	return grid.RegisterPreemption(name, f)
}

// AdmissionPolicies returns the names of every registered admission
// policy — the built-ins (fcfs, sjf, edf) plus anything plugged in
// through RegisterAdmissionPolicy — sorted. The slice is a defensive
// copy; mutating it cannot corrupt the registry.
func AdmissionPolicies() []string { return grid.AdmissionNames() }

// PreemptionPolicies returns the names of every registered preemption
// policy — the built-ins (none, lowest-priority) plus anything plugged
// in through RegisterPreemptionPolicy — sorted. The slice is a defensive
// copy.
func PreemptionPolicies() []string { return grid.PreemptionNames() }

// PaperOnlineSweep returns the full online campaign: both arrival kinds,
// all built-in policies, five trials over a 100k-slot horizon.
func PaperOnlineSweep() OnlineSweep { return exp.PaperOnlineSweep() }

// QuickOnlineSweep returns a reduced online campaign preserving the full
// campaign's shape — the one behind `cmd/tables -table 4` and the
// daemon's quick grid preset.
func QuickOnlineSweep() OnlineSweep { return exp.QuickOnlineSweep() }

// ParseOnlineTrace parses a JSONL arrival trace (one
// {"t":..,"app":..,"wmin":..,"deadline":..} object per line; blank lines
// and #-comments skipped) into the entries of a trace OnlineArrival.
func ParseOnlineTrace(data []byte) ([]OnlineEntry, error) { return grid.ParseTrace(data) }

// LoadOnlineTrace reads a JSONL arrival trace file (see ParseOnlineTrace).
func LoadOnlineTrace(path string) ([]OnlineEntry, error) { return grid.LoadTrace(path) }

// CreateOnlineJournal starts a new journal for the online campaign,
// refusing to clobber an existing file.
func CreateOnlineJournal(path string, g OnlineSweep) (*OnlineJournal, error) {
	return exp.CreateGridJournal(path, &g)
}

// OpenOnlineJournal reopens an existing grid journal for appending,
// verifying it belongs to the campaign and dropping a crash-torn tail.
// Both encodings reopen transparently.
func OpenOnlineJournal(path string, g OnlineSweep) (*OnlineJournal, error) {
	return exp.OpenGridJournal(path, &g)
}

// CreateOnlineJournalFormat is CreateOnlineJournal with an explicit
// on-disk encoding.
func CreateOnlineJournalFormat(path string, g OnlineSweep, format JournalFormat) (*OnlineJournal, error) {
	return exp.CreateGridJournalFormat(path, &g, format)
}

// FormatTableIV renders aggregated online rows in the Table IV layout.
func FormatTableIV(rows []TableIVRow) string { return exp.FormatTableIV(rows) }

// FormatTable renders aggregated rows in the paper's table layout.
func FormatTable(rows []TableRow) string { return exp.FormatTable(rows) }

// RenderTableArtifact renders a completed campaign as the numbered table
// artifact (1, 2, the cross-model 3, or the online-grid 4): title line,
// aggregated rows, and (for Tables I/II) the robustness observation —
// exactly the bytes cmd/tables prints after its "# ..." preamble and the
// service daemon serves from GET /v1/campaigns/{id}/tables/{n}.
func RenderTableArtifact(res *SweepResult, table int) (string, error) {
	return exp.RenderTableArtifact(res, table)
}

// FormatTableIII renders the per-model tables of SweepResult.TableIII.
func FormatTableIII(tables []SweepModelTable) string { return exp.FormatTableIII(tables) }

// FormatFigure2 renders the %diff-versus-wmin series of
// SweepResult.Figure2 for the named heuristics.
func FormatFigure2(series map[string][]SweepSeriesPoint, names []string) string {
	return exp.FormatFigure2(series, names)
}
