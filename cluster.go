package tightsched

import (
	"context"

	"tightsched/internal/cluster"
	"tightsched/internal/retry"
)

// Elastic cluster execution (see internal/cluster): a tightschedd
// coordinator decomposes a campaign into leased work units, and any
// number of worker processes — started with cmd/tightschedw or
// RunClusterWorker — claim, simulate and stream them back. Workers may
// crash, stall or resurrect at any time; the journal's coordinate-keyed
// dedup keeps the merged result byte-identical to a sequential run.

type (
	// ClusterWorkerOptions configures one worker process's
	// claim/run/upload loop against a tightschedd coordinator.
	ClusterWorkerOptions = cluster.WorkerConfig
	// RetryPolicy shapes the jittered exponential backoff workers use
	// while the coordinator is unreachable.
	RetryPolicy = retry.Policy
	// ClusterStats is a coordinator's lease-lifecycle snapshot, as
	// reported in campaign statuses and /metrics.
	ClusterStats = cluster.Stats
)

// RunClusterWorker runs a cluster worker until ctx is cancelled (or,
// with ExitAfterIdle set, until it has found no work for that long).
func RunClusterWorker(ctx context.Context, opts ClusterWorkerOptions) error {
	return cluster.RunWorker(ctx, opts)
}
