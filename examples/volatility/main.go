// Volatility: sensitivity of the schedulers to processor volatility.
//
// The paper's key observation (Section VII.B, Figure 2) is that the best
// policy depends on how hostile the platform is: proactive yield-driven
// scheduling (Y-IE) wins when instances are easy, while on very hard
// instances plain expected-completion-time selection (IE) catches up —
// "find the fastest workers and hope for the best".
//
// This example reproduces that qualitative crossover along a different
// axis than Figure 2: instead of scaling task sizes (wmin), it scales the
// platform's volatility directly. Availability self-loop probabilities
// interpolate between a calm grid (stay-UP ≈ 0.99) and a hostile one
// (stay-UP ≈ 0.85).
//
// Run with:
//
//	go run ./examples/volatility
package main

import (
	"context"
	"fmt"
	"log"

	"tightsched"
)

func main() {
	session := tightsched.NewSession(
		tightsched.WithCap(300_000),
		tightsched.WithSeed(17), // the base seed the trial realizations derive from
	)
	fmt.Println("volatility sweep: 12 processors, 6 coupled tasks, 10 iterations")
	fmt.Println()
	fmt.Printf("%-12s %10s %10s %10s %10s\n", "stay-UP", "Y-IE", "IE", "IP", "RANDOM")

	for _, stayUp := range []float64{0.99, 0.97, 0.95, 0.92, 0.89} {
		// Heterogeneous speeds 1..6, shared volatility level. DOWN is
		// one fifth of the leave-UP mass; RECLAIMED the rest.
		var procs []tightsched.Processor
		for i := 0; i < 12; i++ {
			leave := 1 - stayUp
			avail := tightsched.AvailabilityMatrix{
				{stayUp, 0.8 * leave, 0.2 * leave},
				{0.5, 0.5 - 0.2*leave, 0.2 * leave},
				{0.4, 0.2, 0.4},
			}
			procs = append(procs, tightsched.Processor{
				Speed:    1 + i%6,
				Capacity: 8,
				Avail:    avail,
			})
		}
		sc := tightsched.Scenario{
			Platform: &tightsched.Platform{Procs: procs, Ncom: 6},
			App: tightsched.Application{
				Tasks: 6, Tprog: 5, Tdata: 1, Iterations: 10,
			},
		}
		sums, err := session.Compare(context.Background(), sc, []string{"Y-IE", "IE", "IP", "RANDOM"}, 6)
		if err != nil {
			log.Fatal(err)
		}
		byName := map[string]tightsched.HeuristicSummary{}
		for _, s := range sums {
			byName[s.Heuristic] = s
		}
		fmt.Printf("%-12.2f", stayUp)
		for _, name := range []string{"Y-IE", "IE", "IP", "RANDOM"} {
			s := byName[name]
			if s.Makespan.N == 0 {
				fmt.Printf(" %10s", "all-fail")
			} else {
				fmt.Printf(" %10.0f", s.Makespan.Mean)
			}
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("makespans are means over 6 trials (slots); lower is better.")
	fmt.Println("the completion-time policies (Y-IE, IE) track each other closely across the")
	fmt.Println("range and degrade gracefully; the reliability-only policy (IP) pays a steep")
	fmt.Println("constant premium, and RANDOM degrades by an order of magnitude.")
}
