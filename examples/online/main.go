// Online grid walkthrough: a stream of tightly-coupled applications
// arriving on a shared volatile platform, arbitrated by admission and
// preemption policies, through Session.RunOnline.
//
// Run with:
//
//	go run ./examples/online
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"tightsched"
)

func main() {
	ctx := context.Background()
	session := tightsched.NewSession()

	// The policy registries are open and discoverable, like the
	// heuristic and model registries.
	fmt.Printf("admission policies:  %s\n", strings.Join(tightsched.AdmissionPolicies(), ", "))
	fmt.Printf("preemption policies: %s\n\n", strings.Join(tightsched.PreemptionPolicies(), ", "))

	// An online campaign is an OnlineSweep: a tiered heterogeneous
	// platform, an application shape, an observation horizon, and the
	// axes — arrival processes × admission × preemption × trials. Start
	// from the quick preset and shrink it further so this example runs
	// in a couple of seconds.
	g := tightsched.QuickOnlineSweep()
	g.Horizon = 8_000
	g.Trials = 1
	// Two speed tiers, four processors, two-processor blocks: only two
	// applications fit at once, so the policies actually have to choose.
	g.Tiers = []tightsched.OnlineSpeedTier{{Count: 2, Speed: 1}, {Count: 2, Speed: 2}}
	g.Ncom = 6
	g.AppProcs = 2

	// Replace the preset's arrival axis: one seeded Poisson stream and
	// one recorded trace (a burst of urgent small jobs ahead of two
	// deadline-free heavyweights). Every policy combination will face
	// these exact streams — the instance seed ignores the policy axes,
	// so Table IV compares policies under equal worlds.
	g.Arrivals = []tightsched.OnlineArrival{
		{Kind: "poisson", MeanGap: 150, Apps: 8, WminLo: 1, WminHi: 3, DeadlineFactor: 30},
		{Kind: "trace", Trace: []tightsched.OnlineEntry{
			{T: 0, App: "urgent-0", Wmin: 1, Deadline: 500},
			{T: 30, App: "urgent-1", Wmin: 1, Deadline: 500},
			{T: 60, App: "big-0", Wmin: 3},
			{T: 90, App: "big-1", Wmin: 3},
			{T: 1_500, App: "urgent-2", Wmin: 1, Deadline: 600},
		}},
	}

	// Axis overrides compose through options, the same vocabulary as
	// offline sweeps (WithOnlineJournal + ResumeOnline would make this
	// crash-safe; cmd/tables -table 4 runs the same campaign).
	res, err := session.RunOnline(ctx, g,
		tightsched.WithAdmission("fcfs", "edf"),
		tightsched.WithPreemption("none", "lowest-priority"),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Table IV is the campaign's artifact: per-policy response,
	// slowdown, evictions and deadline misses.
	artifact, err := tightsched.RenderTableArtifact(res, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(artifact)

	// The raw rows are available for programmatic use.
	var missed, apps int
	for _, row := range res.Grid.TableIV() {
		missed += row.Missed
		apps += row.Apps
	}
	fmt.Printf("\n%d application runs across all policy combinations, %d missed deadlines\n", apps, missed)
}
