// Non-Markovian availability: the paper's stated future work.
//
// Section VII.B of the paper: "an interesting next step would be to simply
// build a flawed Markov model based on real-world processor availability
// traces, and investigate how 'wrong' the Markov heuristics behave in a
// real-world setting."
//
// This example does exactly that, with the semi-Markov ground truth the
// literature suggests (Weibull holding times, heavy-tailed for UP
// periods):
//
//  1. each processor's true availability is a 3-state semi-Markov process
//     with heavy-tailed Weibull UP durations — NOT memoryless;
//  2. a calibration trace is recorded per processor and a Markov matrix is
//     fitted from its one-step transition counts (the "flawed model");
//  3. the Markov-based heuristics run with the fitted model while the
//     platform actually follows the semi-Markov truth;
//  4. for reference, the same heuristics run in "laboratory conditions",
//     where the platform really follows the fitted Markov chains.
//
// Run with:
//
//	go run ./examples/nonmarkov
package main

import (
	"fmt"
	"log"

	"tightsched/internal/app"
	"tightsched/internal/markov"
	"tightsched/internal/platform"
	"tightsched/internal/rng"
	"tightsched/internal/sim"
)

const (
	procs      = 12
	calibSlots = 50_000
)

// truth builds processor q's real availability process: heavy-tailed UP
// periods, moderate RECLAIMED periods, short DOWN periods; upon leaving
// UP the owner usually reclaims rather than crashes.
func truth(q int) *markov.SemiMarkov {
	sm := &markov.SemiMarkov{}
	sm.Jump[markov.Up][markov.Reclaimed] = 0.9
	sm.Jump[markov.Up][markov.Down] = 0.1
	sm.Jump[markov.Reclaimed][markov.Up] = 0.95
	sm.Jump[markov.Reclaimed][markov.Down] = 0.05
	sm.Jump[markov.Down][markov.Up] = 1
	sm.Hold[markov.Up] = markov.Weibull{Shape: 0.6, Scale: 25 + 3*float64(q%4)}
	sm.Hold[markov.Reclaimed] = markov.Weibull{Shape: 1, Scale: 6}
	sm.Hold[markov.Down] = markov.LogNormal{Mu: 1.5, Sigma: 0.5}
	return sm
}

func main() {
	// Fit the flawed Markov model from per-processor calibration traces.
	fitted := make([]markov.Matrix, procs)
	for q := 0; q < procs; q++ {
		sampler := markov.NewSemiMarkovSampler(truth(q), markov.Up, rng.NewKeyed(1, uint64(q)))
		tr := make([]markov.State, calibSlots)
		for i := range tr {
			tr[i] = sampler.Step()
		}
		m, err := markov.Fit(tr, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		fitted[q] = m
	}

	// The platform the heuristics believe in: fitted chains.
	ps := make([]platform.Processor, procs)
	for q := range ps {
		ps[q] = platform.Processor{Speed: 1 + q%4, Capacity: 6, Avail: fitted[q]}
	}
	pl := &platform.Platform{Procs: ps, Ncom: 6}
	application := app.Application{Tasks: 6, Tprog: 5, Tdata: 1, Iterations: 10}

	fmt.Println("non-Markovian availability: Weibull(0.6) UP periods, Markov model fitted")
	fmt.Printf("from %d calibration slots per processor\n\n", calibSlots)
	fmt.Printf("%-8s %16s %16s\n", "policy", "semi-Markov truth", "Markov (lab)")

	const trials = 8
	for _, name := range []string{"Y-IE", "P-IE", "IE", "IAY", "RANDOM"} {
		real := meanMakespan(pl, application, name, trials, true)
		lab := meanMakespan(pl, application, name, trials, false)
		fmt.Printf("%-8s %16.0f %16.0f\n", name, real, lab)
	}
	fmt.Println()
	fmt.Println("mean makespan in slots over", trials, "trials; lower is better.")
	fmt.Println("the flawed-model heuristics stay effective (far ahead of RANDOM), but the")
	fmt.Println("proactive edge shrinks: heavy-tailed UP periods mean a configuration that")
	fmt.Println("has survived a while will likely keep surviving, so the memoryless model")
	fmt.Println("undervalues staying put and proactive switching gives back some progress —")
	fmt.Println("a quantitative answer to the paper's open question.")
}

// meanMakespan runs one policy several times, either against the true
// semi-Markov availability or against the fitted Markov model itself.
func meanMakespan(pl *platform.Platform, application app.Application, name string, trials int, semi bool) float64 {
	var total float64
	for tr := 0; tr < trials; tr++ {
		cfg := sim.Config{
			Platform:  pl,
			App:       application,
			Heuristic: name,
			Seed:      uint64(100 + tr),
			Cap:       400_000,
		}
		if semi {
			samplers := make([]*markov.SemiMarkovSampler, pl.Size())
			for q := range samplers {
				samplers[q] = markov.NewSemiMarkovSampler(truth(q), markov.Up,
					rng.NewKeyed(uint64(1000+tr), uint64(q)))
			}
			cfg.Provider = sim.ProviderFunc(func(slot int64, dst []markov.State) {
				for q, s := range samplers {
					if slot == 0 {
						dst[q] = s.State()
					} else {
						dst[q] = s.Step()
					}
				}
			})
		}
		res, err := sim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		total += float64(res.Makespan)
	}
	return total / float64(trials)
}
