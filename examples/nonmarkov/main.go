// Non-Markovian availability: the paper's stated future work.
//
// Section VII.B of the paper: "an interesting next step would be to simply
// build a flawed Markov model based on real-world processor availability
// traces, and investigate how 'wrong' the Markov heuristics behave in a
// real-world setting."
//
// The avail subsystem does all of that now; this example is a thin caller:
//
//  1. each processor's true availability is an explicit 3-state
//     semi-Markov process with heavy-tailed Weibull UP durations — NOT
//     memoryless;
//  2. avail.SemiMarkovModel fits the "flawed" Markov matrices from
//     calibration traces (EstimatorMatrices), and every simulation run
//     under the model has its heuristics believe those matrices while the
//     platform follows the semi-Markov truth;
//  3. for reference, the same heuristics run in "laboratory conditions",
//     where the platform really follows the fitted Markov chains.
//
// Run with:
//
//	go run ./examples/nonmarkov
package main

import (
	"context"
	"fmt"
	"log"

	"tightsched"
	"tightsched/internal/app"
	"tightsched/internal/avail"
	"tightsched/internal/markov"
	"tightsched/internal/platform"
)

const procs = 12

// capSlots is the failure limit shared by both ground truths.
const capSlots = 400_000

// truth builds processor q's real availability process: heavy-tailed UP
// periods, moderate RECLAIMED periods, short DOWN periods; upon leaving
// UP the owner usually reclaims rather than crashes.
func truth(q int) *markov.SemiMarkov {
	sm := &markov.SemiMarkov{}
	sm.Jump[markov.Up][markov.Reclaimed] = 0.9
	sm.Jump[markov.Up][markov.Down] = 0.1
	sm.Jump[markov.Reclaimed][markov.Up] = 0.95
	sm.Jump[markov.Reclaimed][markov.Down] = 0.05
	sm.Jump[markov.Down][markov.Up] = 1
	sm.Hold[markov.Up] = markov.Weibull{Shape: 0.6, Scale: 25 + 3*float64(q%4)}
	sm.Hold[markov.Reclaimed] = markov.Weibull{Shape: 1, Scale: 6}
	sm.Hold[markov.Down] = markov.LogNormal{Mu: 1.5, Sigma: 0.5}
	return sm
}

func main() {
	model := &avail.SemiMarkovModel{
		Label:            "weibull-truth",
		Procs:            make([]*markov.SemiMarkov, procs),
		CalibrationSlots: 50_000,
		CalibrationSeed:  1,
	}
	for q := range model.Procs {
		model.Procs[q] = truth(q)
	}
	fitted := model.EstimatorMatrices(nil)

	// One platform, two ground truths: with the model attached, the
	// processors follow the semi-Markov truth while heuristics believe
	// the fitted chains; without it, the fitted chains are the truth.
	ps := make([]platform.Processor, procs)
	for q := range ps {
		ps[q] = platform.Processor{Speed: 1 + q%4, Capacity: 6, Avail: fitted[q]}
	}
	sc := tightsched.Scenario{
		Platform: &platform.Platform{Procs: ps, Ncom: 6},
		App:      app.Application{Tasks: 6, Tprog: 5, Tdata: 1, Iterations: 10},
	}

	fmt.Println("non-Markovian availability: Weibull(0.6) UP periods, Markov model fitted")
	fmt.Printf("from %d calibration slots per processor\n\n", model.CalibrationSlots)
	fmt.Printf("%-8s %16s %16s\n", "policy", "semi-Markov truth", "Markov (lab)")

	const trials = 8
	names := []string{"Y-IE", "P-IE", "IE", "IAY", "RANDOM"}
	// One session, two ground truths: WithModel attaches the semi-Markov
	// truth per call; without it the fitted chains are the truth.
	session := tightsched.NewSession(tightsched.WithCap(capSlots), tightsched.WithSeed(100))
	real := compare(session, sc, names, trials, tightsched.WithModel(model))
	lab := compare(session, sc, names, trials)
	for i, name := range names {
		fmt.Printf("%-8s %16.0f %16.0f\n", name, real[i], lab[i])
	}
	fmt.Println()
	fmt.Println("mean makespan in slots over", trials, "trials; lower is better.")
	fmt.Println("the flawed-model heuristics stay effective (far ahead of RANDOM), but the")
	fmt.Println("proactive edge shrinks: heavy-tailed UP periods mean a configuration that")
	fmt.Println("has survived a while will likely keep surviving, so the memoryless model")
	fmt.Println("undervalues staying put and proactive switching gives back some progress —")
	fmt.Println("a quantitative answer to the paper's open question.")
}

// compare returns the per-heuristic mean makespan over all trials —
// capped (failed) trials count at the cap, as in the paper's #fails
// accounting — under the ground truth the options select.
func compare(session *tightsched.Session, sc tightsched.Scenario, names []string, trials int, opts ...tightsched.Option) []float64 {
	sums, err := session.Compare(context.Background(), sc, names, trials, opts...)
	if err != nil {
		log.Fatal(err)
	}
	means := make([]float64, len(sums))
	for i, s := range sums {
		means[i] = capSlots
		if succeeded := float64(trials - s.Fails); succeeded > 0 {
			means[i] = (s.Makespan.Mean*succeeded + capSlots*float64(s.Fails)) / float64(trials)
		}
	}
	return means
}
