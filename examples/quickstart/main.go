// Quickstart: simulate a tightly-coupled iterative application on a
// volatile desktop grid and compare two schedulers, through the
// context-aware Session API.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"tightsched"
)

func main() {
	// A Session is the entry point: options passed here apply to every
	// call made through it, and every call takes a context — cancel it
	// to stop a simulation at the next slot boundary.
	ctx := context.Background()
	session := tightsched.NewSession()

	// A paper-style random scenario: 5 coupled tasks per iteration, a
	// master that can talk to 10 workers at once, and per-task speeds
	// drawn from [2, 20] slots (wmin = 2). The platform has 20 volatile
	// processors whose availability follows 3-state Markov chains
	// (UP / RECLAIMED / DOWN).
	sc := tightsched.PaperScenario(5, 10, 2, 42)

	// Ask the Section V estimator a question before running anything:
	// if workers 0, 1 and 2 execute a 10-slot coupled computation, how
	// likely is it to finish without a crash, and how long will it take?
	est, err := session.Estimate(ctx, sc, []int{0, 1, 2}, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workers {0,1,2}, workload 10 coupled slots:\n")
	fmt.Printf("  P+ (all UP again before a failure) = %.4f\n", est.Pplus)
	fmt.Printf("  P(success)                         = %.4f\n", est.SuccessProb)
	fmt.Printf("  E[duration | success]              = %.1f slots\n\n", est.ExpectedDuration)

	// Run the application to completion (10 iterations) under the
	// paper's best heuristic, Y-IE — proactive, yield-switched, with
	// expected-completion-time worker selection — and under RANDOM.
	for _, h := range []string{"Y-IE", "IE", "RANDOM"} {
		res, err := session.Run(ctx, sc, h, tightsched.WithSeed(7))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s makespan %6d slots   (%d restarts after crashes, %d proactive reconfigurations)\n",
			h, res.Makespan, res.Restarts, res.Reconfigs)
	}
}
