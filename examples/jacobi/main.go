// Jacobi: schedule a real tightly-coupled numerical workload — a Jacobi
// iterative solver for a diagonally dominant linear system — on a
// heterogeneous desktop grid.
//
// This is the class of application the paper's introduction motivates:
// each iteration updates all unknowns from the previous iterate (the
// tasks exchange data throughout, so all workers must advance in locked
// steps), followed by a global synchronization and a convergence check.
//
// The example first runs the actual Jacobi recurrence to find out how
// many iterations the system needs, then simulates executing exactly that
// many iterations on a mixed grid — a few fast "lab" machines that are
// often reclaimed by their owners, and slower but steadier "office"
// machines — under three schedulers.
//
// Run with:
//
//	go run ./examples/jacobi
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"tightsched"
)

// jacobiIterations solves Ax = b for a synthetic diagonally dominant
// system of size n with the Jacobi method and returns the number of
// iterations to reach the tolerance.
func jacobiIterations(n int, tol float64) int {
	// A: tridiagonal with 4 on the diagonal and -1 off it; b := A·ones,
	// so the exact solution is the all-ones vector.
	b := make([]float64, n)
	for i := range b {
		b[i] = 4
		if i > 0 {
			b[i]--
		}
		if i < n-1 {
			b[i]--
		}
	}
	x := make([]float64, n)
	next := make([]float64, n)
	for iter := 1; ; iter++ {
		var maxDiff float64
		for i := 0; i < n; i++ {
			sum := b[i]
			if i > 0 {
				sum += x[i-1]
			}
			if i < n-1 {
				sum += x[i+1]
			}
			next[i] = sum / 4
			if d := math.Abs(next[i] - x[i]); d > maxDiff {
				maxDiff = d
			}
		}
		x, next = next, x
		if maxDiff < tol {
			// Sanity: the solution must be ones.
			for i := range x {
				if math.Abs(x[i]-1) > 100*tol {
					log.Fatalf("jacobi did not converge to the expected solution (x[%d]=%v)", i, x[i])
				}
			}
			return iter
		}
	}
}

func main() {
	const unknowns = 4096
	iterations := jacobiIterations(unknowns, 1e-6)
	fmt.Printf("Jacobi solver: %d unknowns converge in %d synchronized iterations\n\n",
		unknowns, iterations)

	// The grid: 4 fast lab machines (w=2) that their owners reclaim
	// often, and 8 office machines (w=6) that are slower but steadier.
	// Crashes (DOWN) are rare everywhere; reclamation dominates.
	lab := tightsched.AvailabilityMatrix{
		{0.90, 0.095, 0.005}, // UP: often reclaimed
		{0.30, 0.695, 0.005}, // RECLAIMED: owner sessions last a while
		{0.50, 0.25, 0.25},
	}
	office := tightsched.AvailabilityMatrix{
		{0.985, 0.010, 0.005},
		{0.60, 0.395, 0.005},
		{0.50, 0.25, 0.25},
	}
	var procs []tightsched.Processor
	for i := 0; i < 4; i++ {
		procs = append(procs, tightsched.Processor{Speed: 2, Capacity: 8, Avail: lab})
	}
	for i := 0; i < 8; i++ {
		procs = append(procs, tightsched.Processor{Speed: 6, Capacity: 8, Avail: office})
	}
	sc := tightsched.Scenario{
		Platform: &tightsched.Platform{Procs: procs, Ncom: 4},
		App: tightsched.Application{
			Tasks:      8, // 8 block-rows of the matrix per iteration
			Tprog:      10,
			Tdata:      2,
			Iterations: iterations,
		},
	}

	fmt.Printf("grid: 4 fast-but-reclaimed lab machines (w=2), 8 steady office machines (w=6)\n")
	fmt.Printf("application: 8 coupled tasks/iteration, %d iterations, ncom=4\n\n", iterations)

	session := tightsched.NewSession(
		tightsched.WithCap(400_000),
		tightsched.WithSeed(3), // the base seed the 5 trial realizations derive from
	)
	sums, err := session.Compare(context.Background(), sc, []string{"Y-IE", "IE", "IP", "RANDOM"}, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s %8s %12s %12s %10s\n", "policy", "fails", "mean slots", "median", "restarts")
	for _, s := range sums {
		fmt.Printf("%-8s %8d %12.0f %12.0f %10.1f\n",
			s.Heuristic, s.Fails, s.Makespan.Mean, s.Makespan.Median, s.MeanRestarts)
	}
	fmt.Println("\nthe completion-time-aware policies (IE, Y-IE) dominate: they only couple the")
	fmt.Println("computation to the often-reclaimed lab machines when the speedup pays for the")
	fmt.Println("suspensions; pure probability-of-success (IP) over-weights reliability and")
	fmt.Println("RANDOM pays for constant restarts")
}
