// Figure 1: replay the paper's worked execution example and render it in
// the paper's own notation.
//
// The setting (Section III.C, Figure 1): five processors with w_i = i,
// n_com = 2, Tprog = 2, Tdata = 1, and m = 5 tasks mapped as two tasks on
// P2, two on P3 and one on P4 — a workload of max(2·2, 2·3, 1·4) = 6
// coupled compute slots. P1 and P5 are unavailable; P3 and P2 are
// temporarily reclaimed at inconvenient moments, suspending first the
// communication phase and then the coupled computation.
//
// Run with:
//
//	go run ./examples/figure1
package main

import (
	"context"
	"fmt"
	"log"

	"tightsched/internal/app"
	"tightsched/internal/markov"
	"tightsched/internal/platform"
	"tightsched/internal/sched"
	"tightsched/internal/sim"
	"tightsched/internal/trace"
)

// figure1Heuristic pins the paper's assignment: 2 tasks on P2, 2 on P3,
// 1 on P4, enrolling as soon as those three workers are UP.
type figure1Heuristic struct{}

func (figure1Heuristic) Name() string { return "FIGURE1" }

func (figure1Heuristic) Decide(v *sched.View) app.Assignment {
	if v.Current != nil {
		return v.Current
	}
	asg := app.Assignment{0, 2, 2, 1, 0}
	for q, x := range asg {
		if x > 0 && v.States[q] != markov.Up {
			return nil
		}
	}
	return asg
}

// init plugs the scripted policy into the open heuristic registry: the
// simulator then resolves it by name, exactly as it would a paper
// heuristic or any policy registered from outside internal/sched.
func init() {
	sched.MustRegister("FIGURE1", func(*sched.Env) (sched.Heuristic, error) {
		return figure1Heuristic{}, nil
	})
}

func main() {
	procs := make([]platform.Processor, 5)
	for i := range procs {
		procs[i] = platform.Processor{
			Speed:    i + 1, // w_i = i as in the paper
			Capacity: platform.UnboundedCapacity,
			Avail:    markov.Uniform(0.95), // unused: availability is scripted
		}
	}
	pl := &platform.Platform{Procs: procs, Ncom: 2}

	// The scripted availability: one string per processor, one character
	// per slot (u = UP, r = RECLAIMED, d = DOWN). P3 is reclaimed during
	// the communication phase, P2 and then P3 during the computation.
	script, err := sim.ParseScript([]string{
		"ddddddddddddddd", // P1: never available this iteration
		"uuuuuuuuurruuuu", // P2: reclaimed at t=9,10 (computation suspends)
		"uurruuuuuuuruuu", // P3: reclaimed at t=2,3 and t=11
		"uuuuuuuuuuuuuuu", // P4: always UP
		"ddddddddddddddd", // P5: never available this iteration
	})
	if err != nil {
		log.Fatal(err)
	}

	rec := &trace.Recorder{}
	res, err := sim.RunContext(context.Background(), sim.Config{
		Platform:  pl,
		App:       app.Application{Tasks: 5, Tprog: 2, Tdata: 1, Iterations: 1},
		Heuristic: "FIGURE1", // resolved through the registry (see init)
		Provider:  &sim.ScriptProvider{Script: script},
		Recorder:  rec,
		Cap:       100,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 1 — example iteration execution")
	fmt.Println()
	fmt.Print(trace.Legend())
	fmt.Println()
	fmt.Print(rec.Render())
	fmt.Println()
	fmt.Printf("iteration completed in %d slots: %d worker-slots of communication,\n",
		res.Makespan, res.CommSlots)
	fmt.Printf("%d coupled compute slots (suspended while P2/P3 were reclaimed)\n",
		res.ComputeSlots)

	// The recorder is run-length encoded: per-slot views are reconstructed
	// on demand (Steps/At), while storage scales with state/activity
	// transitions — here a handful of spans for 15 slots, and one span for
	// a million-slot idle stretch.
	fmt.Printf("trace storage: %d slots in %d run-length spans\n", rec.Len(), rec.SpanCount())
	for step := range rec.Steps() {
		if step.Event != "" {
			fmt.Printf("event at t=%d: %s\n", step.Slot, step.Event)
		}
	}
}
