// Tests for the context-aware Session API: cancellation semantics
// (cancel mid-campaign, resume bit-identically), the typed event stream
// and its shutdown guarantees, functional-option parity with the
// deprecated struct entry points, and the open heuristic/model
// registries driven from outside internal/sched and internal/avail.
package tightsched_test

import (
	"context"
	"errors"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"tightsched"
	"tightsched/internal/app"
	"tightsched/internal/exp"
	"tightsched/internal/markov"
	"tightsched/internal/sched"
)

// sessionSweep is a small campaign preserving the Section VII shape.
func sessionSweep(m int, heuristics []string) tightsched.Sweep {
	s := tightsched.QuickSweep(m)
	s.Ncoms = []int{10}
	s.Wmins = []int{1, 2}
	s.Scenarios = 1
	s.Trials = 2
	s.Cap = 50_000
	s.Heuristics = heuristics
	return s
}

// renderTables renders every table artifact the sweep supports: the
// Table I/II layout always, plus the per-model Table III slices when the
// campaign has a model axis.
func renderTables(t *testing.T, res *tightsched.SweepResult) string {
	t.Helper()
	rows, err := res.Table(tightsched.ReferenceHeuristic)
	if err != nil {
		t.Fatal(err)
	}
	out := tightsched.FormatTable(rows)
	if models := res.Models(); len(models) > 1 {
		tabs, err := res.TableIII(tightsched.ReferenceHeuristic)
		if err != nil {
			t.Fatal(err)
		}
		out += tightsched.FormatTableIII(tabs)
	}
	return out
}

// cancelResume runs the sweep uninterrupted, then journaled with the
// context cancelled partway through, then resumes from the journal alone,
// and requires the resumed tables to be byte-identical to the
// uninterrupted ones.
func cancelResume(t *testing.T, sweep tightsched.Sweep) {
	t.Helper()
	ctx := context.Background()
	session := tightsched.NewSession()

	full, err := session.RunSweep(ctx, sweep)
	if err != nil {
		t.Fatal(err)
	}
	refTables := renderTables(t, full)

	// The interrupted run: two workers so completions trickle, a
	// progress hook that pulls the plug a third of the way in.
	path := filepath.Join(t.TempDir(), "cancelled.journal")
	j, err := tightsched.CreateSweepJournal(path, sweep, tightsched.SweepShard{})
	if err != nil {
		t.Fatal(err)
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	limit := len(full.Instances) / 3
	if limit == 0 {
		limit = 1
	}
	_, err = session.RunSweep(runCtx, sweep,
		tightsched.WithWorkers(2),
		tightsched.WithJournal(j),
		tightsched.WithProgress(func(done, total int) {
			if done >= limit {
				cancel()
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign returned %v, want context.Canceled", err)
	}
	journaled := j.DoneCount()
	if journaled < limit || journaled >= len(full.Instances) {
		t.Fatalf("journal holds %d instances after cancel, want in [%d, %d)", journaled, limit, len(full.Instances))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume from the file alone: recorded instances replay, the rest
	// re-run from coordinate-derived seeds. WithWorkers applies to a
	// resume too (the journal spec omits runtime knobs), and a bounded
	// pool must not change results.
	res, err := session.ResumeSweep(ctx, path, tightsched.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != len(full.Instances) {
		t.Fatalf("resumed campaign has %d instances, want %d", len(res.Instances), len(full.Instances))
	}
	for i := range res.Instances {
		if res.Instances[i] != full.Instances[i] {
			t.Fatalf("instance %d differs after cancel+resume:\n%+v\n%+v", i, res.Instances[i], full.Instances[i])
		}
	}
	if got := renderTables(t, res); got != refTables {
		t.Fatalf("tables differ after cancel+resume:\n--- uninterrupted\n%s--- resumed\n%s", refTables, got)
	}
}

// TestCancelResumeByteIdentical is the acceptance path: a campaign
// started via the Session API, cancelled via context mid-run, and resumed
// from its journal produces byte-identical Table I/II/III output to an
// uninterrupted run. The m=5 campaign carries a two-model axis (Markov +
// the built-in semi-Markov), covering the Table I and Table III layouts;
// the m=10 campaign covers Table II's.
func TestCancelResumeByteIdentical(t *testing.T) {
	t.Run("m5-multimodel", func(t *testing.T) {
		sweep := sessionSweep(5, []string{"IE", "Y-IE", "RANDOM"})
		markovModel, err := tightsched.ModelByName("markov")
		if err != nil {
			t.Fatal(err)
		}
		semi, err := tightsched.ModelByName("semimarkov")
		if err != nil {
			t.Fatal(err)
		}
		sweep.Models = []tightsched.AvailabilityModel{markovModel, semi}
		cancelResume(t, sweep)
	})
	t.Run("m10", func(t *testing.T) {
		cancelResume(t, sessionSweep(10, []string{"IE", "Y-IE", "IAY", "RANDOM"}))
	})
}

// TestSessionRunCancelled: a cancelled context stops a single simulation
// at a slot boundary with the context's error.
func TestSessionRunCancelled(t *testing.T) {
	sc := tightsched.PaperScenario(5, 10, 2, 42)
	session := tightsched.NewSession()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := session.Run(ctx, sc, "IE"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Run returned %v, want context.Canceled", err)
	}
	if _, err := session.Compare(ctx, sc, []string{"IE"}, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Compare returned %v, want context.Canceled", err)
	}
	if _, err := session.Estimate(ctx, sc, []int{0, 1}, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Estimate returned %v, want context.Canceled", err)
	}
}

// TestSessionOptionParity: the functional-option path must reproduce the
// deprecated struct-options path bit for bit — the Session API is a
// reshaping, not a semantic change.
func TestSessionOptionParity(t *testing.T) {
	ctx := context.Background()
	sc := tightsched.PaperScenario(5, 10, 2, 11)
	session := tightsched.NewSession(tightsched.WithCap(200_000))
	for _, h := range []string{"IE", "Y-IE", "RANDOM"} {
		for _, seed := range []uint64{1, 7} {
			oldRes, err := tightsched.Run(sc, h, tightsched.Options{Seed: seed, Cap: 200_000})
			if err != nil {
				t.Fatal(err)
			}
			newRes, err := session.Run(ctx, sc, h, tightsched.WithSeed(seed))
			if err != nil {
				t.Fatal(err)
			}
			if oldRes != newRes {
				t.Fatalf("%s seed %d: session %+v != deprecated %+v", h, seed, newRes, oldRes)
			}
		}
	}

	oldSums, err := tightsched.Compare(sc, []string{"IE", "Y-IE"}, 3, 5, tightsched.Options{Cap: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	newSums, err := session.Compare(ctx, sc, []string{"IE", "Y-IE"}, 3,
		tightsched.WithSeed(5), tightsched.WithCap(100_000))
	if err != nil {
		t.Fatal(err)
	}
	for i := range oldSums {
		if oldSums[i] != newSums[i] {
			t.Fatalf("summary %d: session %+v != deprecated %+v", i, newSums[i], oldSums[i])
		}
	}
}

// TestSessionOptionScope: a per-call option outside the entry point's
// scope is an error, not a silent no-op; session-level options may mix
// scopes and apply where meaningful.
func TestSessionOptionScope(t *testing.T) {
	ctx := context.Background()
	sc := tightsched.PaperScenario(5, 10, 2, 42)
	sweep := sessionSweep(5, []string{"IE"})
	session := tightsched.NewSession()

	if _, err := session.Run(ctx, sc, "IE", tightsched.WithWorkers(2)); err == nil {
		t.Fatal("Run accepted the campaign option WithWorkers")
	}
	if _, err := session.Compare(ctx, sc, []string{"IE"}, 1, tightsched.WithDiscardInstances()); err == nil {
		t.Fatal("Compare accepted the campaign option WithDiscardInstances")
	}
	if _, err := session.RunSweep(ctx, sweep, tightsched.WithCap(1)); err == nil {
		t.Fatal("RunSweep accepted the simulation option WithCap")
	}
	var streamErr error
	for _, err := range session.Stream(ctx, sweep, tightsched.WithSeed(1)) {
		if err != nil {
			streamErr = err
		}
	}
	if streamErr == nil {
		t.Fatal("Stream accepted the simulation option WithSeed")
	}
	if _, err := session.ResumeSweep(ctx, "/nonexistent", tightsched.WithModel(tightsched.MarkovModel{})); err == nil ||
		!strings.Contains(err.Error(), "WithModel") {
		t.Fatalf("ResumeSweep scope error = %v, want a WithModel complaint", err)
	}

	// Entry points reject even same-family options they cannot honor:
	// Compare has no single trace, Stream delivers events itself, and
	// ResumeSweep reads journal and shard from the file.
	if _, err := session.Compare(ctx, sc, []string{"IE"}, 1, tightsched.WithRecorder(&tightsched.Recorder{})); err == nil {
		t.Fatal("Compare accepted WithRecorder, which it silently drops")
	}
	var progressErr error
	for _, err := range session.Stream(ctx, sweep, tightsched.WithProgress(func(int, int) {})) {
		if err != nil {
			progressErr = err
		}
	}
	if progressErr == nil {
		t.Fatal("Stream accepted WithProgress, which it never invokes")
	}
	shard, err := tightsched.ParseSweepShard("0/2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := session.ResumeSweep(ctx, "/nonexistent", tightsched.WithShard(shard)); err == nil ||
		!strings.Contains(err.Error(), "WithShard") {
		t.Fatalf("ResumeSweep scope error = %v, want a WithShard complaint", err)
	}

	// Mixed-scope options at session level are fine: each call picks up
	// what applies to it.
	mixed := tightsched.NewSession(tightsched.WithCap(100_000), tightsched.WithWorkers(1))
	if _, err := mixed.Run(ctx, sc, "IE", tightsched.WithSeed(7)); err != nil {
		t.Fatalf("mixed session Run: %v", err)
	}
	if _, err := mixed.RunSweep(ctx, sweep); err != nil {
		t.Fatalf("mixed session RunSweep: %v", err)
	}
}

// TestSessionStreamEvents pins the event-stream contract on a complete
// run: one InstanceDone per instance with monotonically increasing
// counters, one PointDone per (model, point) cell, a Progress event after
// every live instance, and a final Completed == Total.
func TestSessionStreamEvents(t *testing.T) {
	sweep := sessionSweep(5, []string{"IE", "RANDOM"})
	session := tightsched.NewSession()
	total := sweep.InstanceCount() * 2
	points := len(sweep.Ncoms) * len(sweep.Wmins) * sweep.Scenarios

	instances, pointsDone, progresses, lastCompleted := 0, 0, 0, 0
	for ev, err := range session.Stream(context.Background(), sweep) {
		if err != nil {
			t.Fatal(err)
		}
		switch ev := ev.(type) {
		case tightsched.InstanceDone:
			instances++
			if ev.Replayed {
				t.Fatal("journal-less run yielded a replayed instance")
			}
			if ev.Completed != lastCompleted+1 || ev.Total != total {
				t.Fatalf("instance counters %d/%d after %d", ev.Completed, ev.Total, lastCompleted)
			}
			lastCompleted = ev.Completed
		case tightsched.PointDone:
			pointsDone++
			if ev.TotalPoints != points {
				t.Fatalf("point total %d, want %d", ev.TotalPoints, points)
			}
		case tightsched.Progress:
			progresses++
		}
	}
	if instances != total || pointsDone != points || progresses != total {
		t.Fatalf("saw %d instances, %d points, %d progress events; want %d, %d, %d",
			instances, pointsDone, progresses, total, points, total)
	}
	if lastCompleted != total {
		t.Fatalf("final completion %d, want %d", lastCompleted, total)
	}
}

// waitForGoroutines polls until the goroutine count settles back to the
// baseline (with scheduling slack), failing the test otherwise.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamShutdownNoLeak: breaking out of a Stream, and cancelling its
// context mid-flight, must both wind the worker pool down completely —
// run under -race in CI, this doubles as the pool's shutdown race test.
func TestStreamShutdownNoLeak(t *testing.T) {
	sweep := sessionSweep(5, []string{"IE", "Y-IE", "RANDOM"})
	sweep.Workers = 4
	session := tightsched.NewSession()
	base := runtime.NumGoroutine()

	// Consumer break after the first instance.
	for ev, err := range session.Stream(context.Background(), sweep) {
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := ev.(tightsched.InstanceDone); ok {
			break
		}
	}
	waitForGoroutines(t, base)

	// External cancellation mid-consumption: the stream must end with
	// context.Canceled and the pool must drain.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var streamErr error
	seen := 0
	for ev, err := range session.Stream(ctx, sweep) {
		if err != nil {
			streamErr = err
			continue
		}
		if _, ok := ev.(tightsched.InstanceDone); ok {
			seen++
			if seen == 2 {
				cancel()
			}
		}
	}
	if !errors.Is(streamErr, context.Canceled) {
		t.Fatalf("cancelled stream ended with %v, want context.Canceled", streamErr)
	}
	waitForGoroutines(t, base)
}

// firstFit is the registry acceptance heuristic: passive, assigning the m
// tasks to UP workers in increasing index order within capacities. It
// lives entirely outside internal/sched.
type firstFit struct{ env *sched.Env }

func (h *firstFit) Name() string { return "FIRSTFIT" }

func (h *firstFit) Decide(v *sched.View) app.Assignment {
	if v.Current != nil {
		return v.Current
	}
	asg := make(app.Assignment, h.env.Platform.Size())
	left := h.env.App.Tasks
	for q, s := range v.States {
		if s != markov.Up {
			continue
		}
		for left > 0 && asg[q] < h.env.Platform.Procs[q].Capacity {
			asg[q]++
			left--
		}
		if left == 0 {
			return asg
		}
	}
	return nil
}

var registerFirstFit = sync.OnceValue(func() error {
	return tightsched.RegisterHeuristic("FIRSTFIT",
		func(env *tightsched.HeuristicEnv) (tightsched.Heuristic, error) {
			return &firstFit{env: env}, nil
		})
})

// TestRegisteredHeuristicEndToEnd is the open-registry acceptance path: a
// heuristic registered from outside internal/sched runs through Run,
// Compare and a sweep axis, and shows up in the name listing.
func TestRegisteredHeuristicEndToEnd(t *testing.T) {
	if err := registerFirstFit(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, name := range tightsched.Heuristics() {
		if name == "FIRSTFIT" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered heuristic missing from Heuristics()")
	}

	ctx := context.Background()
	session := tightsched.NewSession(tightsched.WithCap(100_000))
	sc := tightsched.PaperScenario(5, 10, 2, 42)

	res, err := session.Run(ctx, sc, "FIRSTFIT", tightsched.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed || res.Completed != sc.App.Iterations {
		t.Fatalf("FIRSTFIT run: %+v", res)
	}

	sums, err := session.Compare(ctx, sc, []string{"FIRSTFIT", "IE"}, 2, tightsched.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 || sums[0].Heuristic != "FIRSTFIT" {
		t.Fatalf("Compare summaries: %+v", sums)
	}

	sweep := sessionSweep(5, []string{"FIRSTFIT", "IE"})
	swRes, err := session.RunSweep(ctx, sweep)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, inst := range swRes.Instances {
		if inst.Heuristic == "FIRSTFIT" {
			seen++
		}
	}
	if seen != sweep.InstanceCount() {
		t.Fatalf("sweep ran FIRSTFIT %d times, want %d", seen, sweep.InstanceCount())
	}
}

// renamedMarkov is a registry-test model: the paper's chains under a
// distinct registered name.
type renamedMarkov struct{ tightsched.MarkovModel }

func (renamedMarkov) Name() string { return "testmarkov" }

var registerTestModel = sync.OnceValue(func() error {
	return tightsched.RegisterModel("testmarkov",
		func() tightsched.AvailabilityModel { return renamedMarkov{} })
})

// TestRegisteredModelEndToEnd: a model registered from outside
// internal/avail resolves by name, serves as a sweep axis, and — because
// journal headers record models by name — resumes headlessly.
func TestRegisteredModelEndToEnd(t *testing.T) {
	if err := registerTestModel(); err != nil {
		t.Fatal(err)
	}
	m, err := tightsched.ModelByName("testmarkov")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "testmarkov" {
		t.Fatalf("ModelByName name %q", m.Name())
	}
	found := false
	for _, name := range tightsched.AvailabilityModels() {
		if name == "testmarkov" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered model missing from AvailabilityModels()")
	}

	sweep := sessionSweep(5, []string{"IE", "RANDOM"})
	sweep.Models = []tightsched.AvailabilityModel{m}
	session := tightsched.NewSession()
	ctx := context.Background()

	path := filepath.Join(t.TempDir(), "custom-model.journal")
	j, err := tightsched.CreateSweepJournal(path, sweep, tightsched.SweepShard{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := session.RunSweep(ctx, sweep, tightsched.WithJournal(j))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Headless resume re-resolves "testmarkov" through the registry.
	res, err := session.ResumeSweep(ctx, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != len(full.Instances) {
		t.Fatalf("replayed %d instances, want %d", len(res.Instances), len(full.Instances))
	}
	for _, inst := range res.Instances {
		if inst.Model != "testmarkov" {
			t.Fatalf("instance model %q", inst.Model)
		}
	}
}

// TestAvailabilityModelsDefensiveCopy: the name listing is sorted and
// detached from registry state.
func TestAvailabilityModelsDefensiveCopy(t *testing.T) {
	names := tightsched.AvailabilityModels()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("AvailabilityModels() not sorted: %v", names)
		}
	}
	names[0] = "SCRIBBLED"
	if tightsched.AvailabilityModels()[0] == "SCRIBBLED" {
		t.Fatal("AvailabilityModels() aliases registry state")
	}
}

// TestSweepOptionsObserver: the RunSweep family delivers typed events to
// a registered Observer, matching the instance count exactly.
type countingObserver struct {
	instances, points, progresses int
	lastDone                      int
}

func (o *countingObserver) OnInstanceDone(ev tightsched.InstanceDone) { o.instances++ }
func (o *countingObserver) OnPointDone(ev tightsched.PointDone)       { o.points++ }
func (o *countingObserver) OnProgress(ev tightsched.Progress) {
	o.progresses++
	o.lastDone = ev.Completed
}

func TestSweepObserver(t *testing.T) {
	sweep := sessionSweep(5, []string{"IE", "RANDOM"})
	session := tightsched.NewSession()
	obs := &countingObserver{}
	res, err := session.RunSweep(context.Background(), sweep, tightsched.WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	total := len(res.Instances)
	points := len(sweep.Ncoms) * len(sweep.Wmins) * sweep.Scenarios
	if obs.instances != total || obs.points != points || obs.lastDone != total {
		t.Fatalf("observer saw %d instances, %d points, last progress %d; want %d, %d, %d",
			obs.instances, obs.points, obs.lastDone, total, points, total)
	}
}

// TestStreamReplayEvents: a resume-style stream replays journaled
// instances as Replayed InstanceDone events followed by one summary
// Progress, then runs only the remainder live.
func TestStreamReplayEvents(t *testing.T) {
	sweep := sessionSweep(5, []string{"IE", "RANDOM"})
	session := tightsched.NewSession()
	ctx := context.Background()

	// Journal only shard 0/2, then stream the whole campaign against the
	// journal: shard-0 instances replay, shard-1 instances run live.
	shard, err := tightsched.ParseSweepShard("0/2")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "half.journal")
	j, err := tightsched.CreateSweepJournal(path, sweep, shard)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := session.RunSweep(ctx, sweep, tightsched.WithJournal(j), tightsched.WithShard(shard)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := tightsched.OpenSweepJournal(path)
	if err == nil {
		// A whole-campaign run cannot reuse a shard journal; expected.
		_, err = session.RunSweep(ctx, sweep, tightsched.WithJournal(j2))
		j2.Close()
	}
	if err == nil {
		t.Fatal("whole-campaign run accepted a shard journal")
	}

	// The legitimate path: resume the shard journal itself; every
	// instance replays, exp.Stream semantics verified via the observer.
	obs := &countingObserver{}
	res, err := session.ResumeSweep(ctx, path, tightsched.WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	if obs.instances != len(res.Instances) || obs.progresses != 1 {
		t.Fatalf("pure replay delivered %d instance events and %d progress events, want %d and 1",
			obs.instances, obs.progresses, len(res.Instances))
	}

	// Even a pure replay honors cancellation: a cancelled campaign must
	// never masquerade as a completed one.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := session.ResumeSweep(cancelled, path); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled pure replay returned %v, want context.Canceled", err)
	}
}

// TestStreamUnknownHeuristicError: stream-level validation surfaces as
// the iterator's error value, not a panic.
func TestStreamUnknownHeuristicError(t *testing.T) {
	sweep := sessionSweep(5, []string{"NO-SUCH"})
	session := tightsched.NewSession()
	var got error
	for _, err := range session.Stream(context.Background(), sweep) {
		if err != nil {
			got = err
		}
	}
	if got == nil {
		t.Fatal("unknown heuristic accepted by Stream")
	}
	// The exp layer rejects it before any goroutine spawns.
	if _, err := exp.Run(sweep, nil); err == nil {
		t.Fatal("unknown heuristic accepted by Run")
	}
}

// TestSessionTimeAdvanceValidation: an out-of-range WithTimeAdvance value
// is rejected when the entry point runs — per-call or session-level — and
// the batch core runs solo through the session surface, byte-identical to
// the default engine.
func TestSessionTimeAdvanceValidation(t *testing.T) {
	ctx := context.Background()
	sc := tightsched.PaperScenario(5, 10, 2, 42)
	session := tightsched.NewSession()

	bad := tightsched.TimeAdvance(99)
	if _, err := session.Run(ctx, sc, "IE", tightsched.WithTimeAdvance(bad)); err == nil ||
		!strings.Contains(err.Error(), "WithTimeAdvance") {
		t.Fatalf("Run accepted an out-of-range time advance (err=%v)", err)
	}
	badSession := tightsched.NewSession(tightsched.WithTimeAdvance(bad))
	if _, err := badSession.Run(ctx, sc, "IE"); err == nil {
		t.Fatal("session-level out-of-range time advance accepted")
	}

	leap, err := session.Run(ctx, sc, "IE", tightsched.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := session.Run(ctx, sc, "IE", tightsched.WithSeed(3),
		tightsched.WithTimeAdvance(tightsched.AdvanceBatch))
	if err != nil {
		t.Fatal(err)
	}
	if leap != batch {
		t.Fatalf("solo batch result %+v != leap %+v", batch, leap)
	}
}

// onlineSessionSweep shrinks the quick online campaign to test scale:
// one arrival process, two policies per axis, a single short trial.
func onlineSessionSweep() tightsched.OnlineSweep {
	g := tightsched.QuickOnlineSweep()
	g.Horizon = 5_000
	g.Trials = 1
	g.Arrivals = []tightsched.OnlineArrival{g.Arrivals[1]} // the recorded trace
	g.Admissions = []string{"fcfs", "edf"}
	g.Preemptions = []string{"none"}
	return g
}

// TestSessionOnlineOptionScope extends the scope contract to the online
// entry points: offline entry points reject the online axis overrides,
// RunOnline rejects simulation/offline-campaign options, and
// ResumeOnline rejects the identity-changing overrides a journal has
// already pinned.
func TestSessionOnlineOptionScope(t *testing.T) {
	ctx := context.Background()
	sc := tightsched.PaperScenario(5, 10, 2, 42)
	session := tightsched.NewSession()

	if _, err := session.Run(ctx, sc, "IE", tightsched.WithAdmission("fcfs")); err == nil ||
		!strings.Contains(err.Error(), "WithAdmission") {
		t.Fatalf("Run scope error = %v, want a WithAdmission complaint", err)
	}
	if _, err := session.RunSweep(ctx, sessionSweep(5, []string{"IE"}), tightsched.WithArrivals()); err == nil ||
		!strings.Contains(err.Error(), "WithArrivals") {
		t.Fatalf("RunSweep scope error = %v, want a WithArrivals complaint", err)
	}
	if _, err := session.RunOnline(ctx, onlineSessionSweep(), tightsched.WithCap(1)); err == nil ||
		!strings.Contains(err.Error(), "WithCap") {
		t.Fatalf("RunOnline scope error = %v, want a WithCap complaint", err)
	}
	if _, err := session.RunOnline(ctx, onlineSessionSweep(), tightsched.WithRecorder(&tightsched.Recorder{})); err == nil ||
		!strings.Contains(err.Error(), "WithRecorder") {
		t.Fatalf("RunOnline scope error = %v, want a WithRecorder complaint", err)
	}
	if _, err := session.ResumeOnline(ctx, "/nonexistent", tightsched.WithPreemption("none")); err == nil ||
		!strings.Contains(err.Error(), "WithPreemption") {
		t.Fatalf("ResumeOnline scope error = %v, want a WithPreemption complaint", err)
	}
}

// TestSessionRunOnline exercises the online entry point end to end: the
// axis overrides replace the campaign's axes, progress fires per
// instance, and cancel + ResumeOnline reproduces the uninterrupted
// bytes (the CLI -resume path in library form).
func TestSessionRunOnline(t *testing.T) {
	ctx := context.Background()
	g := onlineSessionSweep()
	session := tightsched.NewSession()

	var progress [][2]int
	res, err := session.RunOnline(ctx, g,
		tightsched.WithAdmission("sjf"),
		tightsched.WithPreemption("none", "lowest-priority"),
		tightsched.WithProgress(func(done, total int) { progress = append(progress, [2]int{done, total}) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Grid.Instances) != 2 { // 1 arrival x 1 admission x 2 preemptions x 1 trial
		t.Fatalf("override campaign produced %d instances, want 2", len(res.Grid.Instances))
	}
	for _, in := range res.Grid.Instances {
		if in.Admission != "sjf" {
			t.Fatalf("instance ran admission %q, want the sjf override", in.Admission)
		}
	}
	if len(progress) == 0 || progress[len(progress)-1] != [2]int{2, 2} {
		t.Fatalf("progress events = %v, want a final 2/2", progress)
	}
	want, err := tightsched.RenderTableArtifact(res, 4)
	if err != nil {
		t.Fatal(err)
	}

	// Journal + cancel mid-campaign, then resume byte-identically.
	path := filepath.Join(t.TempDir(), "grid.journal")
	j, err := tightsched.CreateOnlineJournal(path, onlineGridFromResult(res))
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	_, err = session.RunOnline(cctx, onlineGridFromResult(res),
		tightsched.WithOnlineJournal(j),
		tightsched.WithWorkers(1),
		tightsched.WithProgress(func(done, total int) {
			if done >= 1 {
				cancel()
			}
		}),
	)
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunOnline returned %v, want context.Canceled", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	resumed, err := session.ResumeOnline(ctx, path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tightsched.RenderTableArtifact(resumed, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("resumed Table IV differs:\n--- resumed ---\n%s--- want ---\n%s", got, want)
	}
}

// onlineGridFromResult rebuilds the exact campaign a result ran — the
// sweep with the axis overrides applied — for journaling it again.
func onlineGridFromResult(res *tightsched.SweepResult) tightsched.OnlineSweep {
	return res.Grid.Sweep
}
